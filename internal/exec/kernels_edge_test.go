package exec

import (
	"fmt"
	"reflect"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/table"
)

// edgeStore builds a store with exact 4-row chunks (partitioned by a
// monotone column, so row order is preserved) and unique tags planted at
// chunk boundaries: "first" at row 4 (first row of chunk 1), "last" at row
// 11 (last row of chunk 2). Chunk 3 holds a single distinct tag "only".
func edgeStore(t *testing.T) *colstore.Store {
	t.Helper()
	const rows, chunkRows = 16, 4
	s := make([]string, rows)
	n := make([]int64, rows)
	p := make([]string, rows)
	for i := 0; i < rows; i++ {
		s[i] = fmt.Sprintf("bulk%d", i%3)
		n[i] = int64(i)
		p[i] = fmt.Sprintf("p%02d", i/chunkRows)
	}
	s[4] = "first" // first row of chunk 1
	s[11] = "last" // last row of chunk 2
	for i := 12; i < 16; i++ {
		s[i] = "only" // chunk 3: one distinct value
	}
	tbl := table.New("data").
		AddStringColumn("s", s).
		AddInt64Column("n", n).
		AddStringColumn("p", p)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields: []string{"p"},
		MaxChunkRows:    chunkRows,
	})
	if err != nil {
		t.Fatalf("FromTable: %v", err)
	}
	if store.NumChunks() != 4 {
		t.Fatalf("edge store has %d chunks, want 4", store.NumChunks())
	}
	return store
}

// TestKernelChunkBoundaries drives restrictions that land exactly on chunk
// edges — the first row of a chunk, the last row of a chunk, a chunk with a
// single distinct value, and the all-rows / zero-rows extremes — through
// both scan paths and checks results and the skip/scan counters.
func TestKernelChunkBoundaries(t *testing.T) {
	store := edgeStore(t)
	cases := []struct {
		name    string
		query   string
		wantN   string // expected lone aggregate rendering, "" to skip
		scanned int    // chunks the precise classification must scan
		skipped int    // chunks skipped before or during classification
	}{
		{
			name:    "first row of a chunk",
			query:   `SELECT COUNT(*) AS c FROM data WHERE s = "first";`,
			wantN:   "1",
			scanned: 1, skipped: 3,
		},
		{
			name:    "last row of a chunk",
			query:   `SELECT SUM(n) AS c FROM data WHERE s = "last";`,
			wantN:   "11",
			scanned: 1, skipped: 3,
		},
		{
			name: "single-distinct chunk fully active",
			// Chunk 3 holds only "only": classification is activeAll, so the
			// chunk aggregates without a mask.
			query:   `SELECT COUNT(*) AS c FROM data WHERE s = "only";`,
			wantN:   "4",
			scanned: 1, skipped: 3,
		},
		{
			name:    "all rows match",
			query:   `SELECT COUNT(*) AS c FROM data WHERE n >= 0;`,
			wantN:   "16",
			scanned: 4, skipped: 0,
		},
		{
			name: "zero rows match",
			// No group receives a row, so the result is empty — and every
			// chunk is skipped before its data is touched.
			query:   `SELECT COUNT(*) AS c FROM data WHERE s = "absent";`,
			wantN:   "empty",
			scanned: 0, skipped: 4,
		},
		{
			name:  "group by spanning boundaries",
			query: `SELECT s, COUNT(*) AS c, MAX(n) AS m FROM data WHERE n < 12 GROUP BY s;`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kernel := New(store, Options{Parallelism: 1})
			scalar := New(store, Options{Parallelism: 1, DisableKernels: true})
			kres, err := kernel.Query(tc.query)
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			sres, err := scalar.Query(tc.query)
			if err != nil {
				t.Fatalf("scalar: %v", err)
			}
			if !reflect.DeepEqual(kres.Rows, sres.Rows) {
				t.Fatalf("paths diverge:\n  kernel: %#v\n  scalar: %#v", kres.Rows, sres.Rows)
			}
			switch tc.wantN {
			case "":
				return
			case "empty":
				if len(kres.Rows) != 0 {
					t.Fatalf("want empty result, got %#v", kres.Rows)
				}
			default:
				if len(kres.Rows) != 1 || len(kres.Rows[0]) != 1 {
					t.Fatalf("want one aggregate cell, got %#v", kres.Rows)
				}
				if got := kres.Rows[0][0].String(); got != tc.wantN {
					t.Fatalf("aggregate = %s, want %s", got, tc.wantN)
				}
			}
			for _, r := range []struct {
				path string
				res  *Result
			}{{"kernel", kres}, {"scalar", sres}} {
				if r.res.Stats.ChunksScanned != tc.scanned {
					t.Errorf("%s ChunksScanned = %d, want %d", r.path, r.res.Stats.ChunksScanned, tc.scanned)
				}
				if r.res.Stats.ChunksSkipped != tc.skipped {
					t.Errorf("%s ChunksSkipped = %d, want %d", r.path, r.res.Stats.ChunksSkipped, tc.skipped)
				}
			}
			if kres.Stats.KernelChunks != tc.scanned {
				t.Errorf("KernelChunks = %d, want %d", kres.Stats.KernelChunks, tc.scanned)
			}
			if sres.Stats.ScalarChunks != tc.scanned {
				t.Errorf("ScalarChunks = %d, want %d", sres.Stats.ScalarChunks, tc.scanned)
			}
		})
	}
}

// TestKernelSparseDenseCutover pins the sparse-gather/dense cutover: the
// same query must give identical results on either side of the mask
// popcount threshold (n*8 <= rows chooses the gather path).
func TestKernelSparseDenseCutover(t *testing.T) {
	const rows = 512
	s := make([]string, rows)
	n := make([]int64, rows)
	for i := 0; i < rows; i++ {
		s[i] = fmt.Sprintf("g%d", i%4)
		n[i] = int64(i % 17)
	}
	tbl := table.New("data").AddStringColumn("s", s).AddInt64Column("n", n)
	store, err := colstore.FromTable(tbl, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// n < 1 selects ~6% of rows (sparse); n < 9 selects ~53% (dense).
	for _, where := range []string{"n < 1", "n < 9"} {
		q := fmt.Sprintf(`SELECT s, COUNT(*) AS c, SUM(n) AS t FROM data WHERE %s GROUP BY s;`, where)
		kres, err := New(store, Options{Parallelism: 1}).Query(q)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := New(store, Options{Parallelism: 1, DisableKernels: true}).Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kres.Rows, sres.Rows) {
			t.Fatalf("%s: paths diverge:\n  kernel: %#v\n  scalar: %#v", where, kres.Rows, sres.Rows)
		}
	}
}
