package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/dict"
	"powerdrill/internal/expr"
	"powerdrill/internal/sql"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

func logs(rows int) *table.Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 31})
}

func buildEngine(t testing.TB, tbl *table.Table, opts colstore.Options, eopts Options) *Engine {
	t.Helper()
	s, err := colstore.FromTable(tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return New(s, eopts)
}

func chunkedOpts() colstore.Options {
	return colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	}
}

// naiveRun evaluates a statement row-by-row over the raw table — the
// reference the engine must agree with.
func naiveRun(t *testing.T, tbl *table.Table, src string) [][]value.Value {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rowAt := func(i int) expr.MapRow {
		m := expr.MapRow{}
		for _, c := range tbl.Cols {
			m[c.Name] = c.Value(i)
		}
		return m
	}
	// Select matching rows.
	var rows []int
	for i := 0; i < tbl.NumRows(); i++ {
		if stmt.Where == nil {
			rows = append(rows, i)
			continue
		}
		ok, err := expr.EvalPred(stmt.Where, rowAt(i))
		if err != nil {
			t.Fatalf("naive pred: %v", err)
		}
		if ok {
			rows = append(rows, i)
		}
	}
	// Resolve group exprs (aliases included).
	resolve := func(g sql.Expr) sql.Expr {
		if id, ok := g.(*sql.Ident); ok {
			for _, item := range stmt.Items {
				if item.Alias == id.Name && !sql.HasAggregate(item.Expr) {
					return item.Expr
				}
			}
		}
		return g
	}
	hasAgg := false
	for _, item := range stmt.Items {
		if sql.HasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg && len(stmt.GroupBy) == 0 {
		// Plain projection.
		var out [][]value.Value
		for _, r := range rows {
			var vals []value.Value
			for _, item := range stmt.Items {
				v, err := expr.Eval(item.Expr, rowAt(r))
				if err != nil {
					t.Fatalf("naive eval: %v", err)
				}
				vals = append(vals, v)
			}
			out = append(out, vals)
		}
		return applyNaiveOrderLimit(t, stmt, out)
	}
	// Group.
	type group struct {
		keys []value.Value
		rows []int
	}
	groups := map[string]*group{}
	for _, r := range rows {
		var keys []value.Value
		var sb strings.Builder
		for _, g := range stmt.GroupBy {
			v, err := expr.Eval(resolve(g), rowAt(r))
			if err != nil {
				t.Fatalf("naive group eval: %v", err)
			}
			keys = append(keys, v)
			sb.WriteString(v.String())
			sb.WriteByte(0x1f)
		}
		k := sb.String()
		if groups[k] == nil {
			groups[k] = &group{keys: keys}
		}
		groups[k].rows = append(groups[k].rows, r)
	}
	var out [][]value.Value
	for _, g := range groups {
		var vals []value.Value
		for _, item := range stmt.Items {
			if !sql.HasAggregate(item.Expr) {
				v, err := expr.Eval(resolve(item.Expr), rowAt(g.rows[0]))
				if err != nil {
					t.Fatalf("naive key eval: %v", err)
				}
				vals = append(vals, v)
				continue
			}
			call := item.Expr.(*sql.Call)
			vals = append(vals, naiveAgg(t, tbl, call, g.rows, rowAt))
		}
		out = append(out, vals)
	}
	return applyNaiveOrderLimit(t, stmt, out)
}

func naiveAgg(t *testing.T, tbl *table.Table, call *sql.Call, rows []int, rowAt func(int) expr.MapRow) value.Value {
	t.Helper()
	name := strings.ToLower(call.Name)
	if call.Star {
		return value.Int64(int64(len(rows)))
	}
	var vals []value.Value
	for _, r := range rows {
		v, err := expr.Eval(call.Args[0], rowAt(r))
		if err != nil {
			t.Fatalf("naive agg eval: %v", err)
		}
		vals = append(vals, v)
	}
	switch name {
	case "count":
		if call.Distinct {
			set := map[string]bool{}
			for _, v := range vals {
				set[v.String()] = true
			}
			return value.Int64(int64(len(set)))
		}
		return value.Int64(int64(len(vals)))
	case "sum":
		if vals[0].Kind() == value.KindInt64 {
			var s int64
			for _, v := range vals {
				s += v.Int()
			}
			return value.Int64(s)
		}
		var s float64
		for _, v := range vals {
			s += v.AsFloat()
		}
		return value.Float64(s)
	case "avg":
		var s float64
		for _, v := range vals {
			s += v.AsFloat()
		}
		return value.Float64(s / float64(len(vals)))
	case "min", "max":
		best := vals[0]
		for _, v := range vals[1:] {
			c := v.Compare(best)
			if (name == "min" && c < 0) || (name == "max" && c > 0) {
				best = v
			}
		}
		return best
	}
	t.Fatalf("naive agg: unknown %q", name)
	return value.Value{}
}

func applyNaiveOrderLimit(t *testing.T, stmt *sql.SelectStmt, rows [][]value.Value) [][]value.Value {
	t.Helper()
	if len(stmt.OrderBy) > 0 {
		cols := map[string]int{}
		for i, item := range stmt.Items {
			if item.Alias != "" {
				cols[item.Alias] = i
			}
			cols[item.Expr.String()] = i
		}
		keys := make([]int, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			idx, ok := cols[o.Expr.String()]
			if !ok {
				t.Fatalf("naive order: %s unresolved", o.Expr)
			}
			keys[i] = idx
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, k := range keys {
				c := rows[a][k].Compare(rows[b][k])
				if c == 0 {
					continue
				}
				if stmt.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if stmt.Limit >= 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}
	return rows
}

// sortRows canonicalizes row order for unordered comparison.
func sortRows(rows [][]value.Value) {
	sort.Slice(rows, func(a, b int) bool {
		for i := range rows[a] {
			if c := rows[a][i].Compare(rows[b][i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// equalRows compares row sets with float tolerance.
func equalRows(a, b [][]value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av.Kind() == value.KindFloat64 && bv.Kind() == value.KindFloat64 {
				af, bf := av.Float(), bv.Float()
				scale := math.Max(math.Abs(af), math.Abs(bf))
				if math.Abs(af-bf) > 1e-9*math.Max(scale, 1) {
					return false
				}
				continue
			}
			if !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}

// checkAgainstNaive runs src on the engine and on the reference and
// compares. Queries with ORDER BY may tie arbitrarily, so comparison is
// done on the sorted row sets unless the query has a LIMIT (where ties cut
// differently); such queries should order deterministically.
func checkAgainstNaive(t *testing.T, e *Engine, tbl *table.Table, src string) {
	t.Helper()
	got, err := e.Query(src)
	if err != nil {
		t.Fatalf("engine %q: %v", src, err)
	}
	want := naiveRun(t, tbl, src)
	g := append([][]value.Value{}, got.Rows...)
	w := append([][]value.Value{}, want...)
	sortRows(g)
	sortRows(w)
	if !equalRows(g, w) {
		t.Fatalf("query %q:\n got %d rows: %v\nwant %d rows: %v", src, len(g), render(g), len(w), render(w))
	}
}

func render(rows [][]value.Value) string {
	var b strings.Builder
	for i, r := range rows {
		if i >= 10 {
			fmt.Fprintf(&b, " …(%d more)", len(rows)-10)
			break
		}
		b.WriteString("[")
		for j, v := range r {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteString("] ")
	}
	return b.String()
}

// queryCorpus are the statements the engine must agree with the reference
// on. They cover every operator, aggregate and clause of the subset.
func queryCorpus() []string {
	return []string{
		// The three paper queries (Section 2.5).
		`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC, country ASC LIMIT 10;`,
		`SELECT date(timestamp) as d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 10;`,
		`SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC, table_name ASC LIMIT 10;`,
		// The Section 2.4 example shape.
		`SELECT country, COUNT(*) as c FROM data WHERE country IN ("de", "fr") GROUP BY country ORDER BY c DESC LIMIT 10;`,
		// Operators.
		`SELECT country, COUNT(*) FROM data WHERE country = "us" GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE country != "us" GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE country NOT IN ("us", "de", "gb") GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE NOT country = "us" AND latency > 500 GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE country = "us" OR country = "jp" GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE latency >= 100 AND latency < 2000 GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE latency <= 50 OR latency > 5000 GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE latency > 100.5 GROUP BY country;`,
		`SELECT country, COUNT(*) FROM data WHERE latency = 105 GROUP BY country;`,
		// Virtual-field restriction (Section 5).
		`SELECT country, COUNT(*) FROM data WHERE date(timestamp) IN ("2011-01-02", "2011-01-03") GROUP BY country;`,
		`SELECT year(timestamp), month(timestamp), COUNT(*) FROM data GROUP BY year(timestamp), month(timestamp);`,
		// Aggregates.
		`SELECT country, SUM(latency), MIN(latency), MAX(latency), AVG(latency) FROM data GROUP BY country;`,
		`SELECT user, MIN(table_name), MAX(table_name) FROM data GROUP BY user;`,
		`SELECT COUNT(*) FROM data;`,
		`SELECT COUNT(*), SUM(latency) FROM data WHERE country IN ("de");`,
		// Multi-column group-by.
		`SELECT country, user, COUNT(*) FROM data GROUP BY country, user;`,
		`SELECT country, date(timestamp) as d, SUM(latency) FROM data WHERE country IN ("us", "de") GROUP BY country, d;`,
		// Row scans.
		`SELECT country, latency FROM data WHERE latency > 9000;`,
		`SELECT table_name FROM data WHERE country = "at" AND latency < 20;`,
		// Arithmetic in aggregates and group keys.
		`SELECT country, SUM(latency * 2) FROM data GROUP BY country;`,
		`SELECT length(country), COUNT(*) FROM data GROUP BY length(country);`,
	}
}

func TestEngineAgainstNaiveAllVariants(t *testing.T) {
	tbl := logs(2000)
	layouts := map[string]colstore.Options{
		"basic":   {},
		"chunked": chunkedOpts(),
		"reorder": {PartitionFields: []string{"country", "table_name"}, MaxChunkRows: 300,
			OptimizeElements: true, StringDict: colstore.StringDictTrie, Reorder: true},
	}
	for lname, lopts := range layouts {
		e := buildEngine(t, tbl, lopts, Options{ExactDistinct: true})
		t.Run(lname, func(t *testing.T) {
			for _, q := range queryCorpus() {
				checkAgainstNaive(t, e, tbl, q)
			}
		})
	}
}

func TestEngineSkippingDisabledSameResults(t *testing.T) {
	tbl := logs(1500)
	normal := buildEngine(t, tbl, chunkedOpts(), Options{})
	noskip := buildEngine(t, tbl, chunkedOpts(), Options{DisableSkipping: true})
	q := `SELECT country, COUNT(*) as c FROM data WHERE country IN ("de") GROUP BY country;`
	a, err := normal.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := noskip.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	sortRows(a.Rows)
	sortRows(b.Rows)
	if !equalRows(a.Rows, b.Rows) {
		t.Fatal("skipping changed results")
	}
	if a.Stats.ChunksSkipped == 0 {
		t.Error("selective query skipped nothing")
	}
	if b.Stats.ChunksSkipped != 0 {
		t.Error("disabled skipping still skipped")
	}
	if b.Stats.RowsScanned <= a.Stats.RowsScanned {
		t.Errorf("skipping did not reduce scanned rows: %d vs %d", a.Stats.RowsScanned, b.Stats.RowsScanned)
	}
}

func TestSkippingStatsOnDrillDown(t *testing.T) {
	tbl := logs(5000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	// Restricting on the first partition field must skip most chunks.
	res, err := e.Query(`SELECT user, COUNT(*) FROM data WHERE country IN ("at") GROUP BY user;`)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.ChunksSkipped == 0 || st.ChunksSkipped+st.ChunksScanned+st.ChunksCached != st.ChunksTotal {
		t.Errorf("stats inconsistent: %+v", st)
	}
	frac := float64(st.ChunksSkipped) / float64(st.ChunksTotal)
	if frac < 0.5 {
		t.Errorf("only %.0f%% chunks skipped for a rare country", frac*100)
	}
	if st.CellsScanned >= st.CellsCovered {
		t.Errorf("cells scanned %d not below covered %d", st.CellsScanned, st.CellsCovered)
	}
}

func TestResultCacheHitsOnFullyActiveChunks(t *testing.T) {
	tbl := logs(3000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{ResultCacheBytes: 16 << 20})
	q := `SELECT country, COUNT(*) FROM data GROUP BY country;`
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ChunksCached != 0 {
		t.Error("first run hit cache")
	}
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ChunksCached != second.Stats.ChunksTotal {
		t.Errorf("second run cached %d/%d chunks", second.Stats.ChunksCached, second.Stats.ChunksTotal)
	}
	sortRows(first.Rows)
	sortRows(second.Rows)
	if !equalRows(first.Rows, second.Rows) {
		t.Error("cached results differ")
	}
	// A restricted query over fully-active chunks reuses the same cache
	// entries: a restriction on a partition-field value makes matching
	// chunks fully active.
	res, err := e.Query(`SELECT country, COUNT(*) FROM data WHERE country IN ("us") GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunksCached == 0 {
		t.Log("note: no fully-active chunk reuse for restricted query (acceptable if few us-only chunks)")
	}
}

func TestCountDistinctApproximation(t *testing.T) {
	tbl := logs(20_000)
	exact := buildEngine(t, tbl, chunkedOpts(), Options{ExactDistinct: true})
	approx := buildEngine(t, tbl, chunkedOpts(), Options{SketchM: 2048})
	q := `SELECT COUNT(DISTINCT table_name) FROM data;`
	er, err := exact.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := approx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	ev, av := float64(er.Rows[0][0].Int()), float64(ar.Rows[0][0].Int())
	if ev == 0 {
		t.Fatal("exact distinct is zero")
	}
	rel := math.Abs(ev-av) / ev
	t.Logf("count distinct: exact=%v approx=%v rel=%.4f", ev, av, rel)
	if rel > 0.15 {
		t.Errorf("approximation error %.3f too large", rel)
	}
	// Grouped count distinct.
	gq := `SELECT country, COUNT(DISTINCT user) FROM data GROUP BY country;`
	eg, err := exact.Query(gq)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := approx.Query(gq)
	if err != nil {
		t.Fatal(err)
	}
	// Per-country user counts are far below m, so the sketch is exact.
	sortRows(eg.Rows)
	sortRows(ag.Rows)
	if !equalRows(eg.Rows, ag.Rows) {
		t.Error("grouped count distinct below m should be exact")
	}
}

func TestVirtualFieldReuse(t *testing.T) {
	tbl := logs(1000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	before := len(e.Store().Columns())
	if _, err := e.Query(`SELECT date(timestamp), COUNT(*) FROM data GROUP BY date(timestamp);`); err != nil {
		t.Fatal(err)
	}
	afterFirst := len(e.Store().Columns())
	if afterFirst != before+1 {
		t.Fatalf("expected one virtual column, got %d new", afterFirst-before)
	}
	if _, err := e.Query(`SELECT date(timestamp), SUM(latency) FROM data GROUP BY date(timestamp);`); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Store().Columns()); got != afterFirst {
		t.Errorf("second query added %d columns; virtual field not reused", got-afterFirst)
	}
	col := e.Store().Column("date(timestamp)")
	if col == nil || !col.Virtual {
		t.Fatal("virtual column missing or unflagged")
	}
}

func TestVirtualFieldSkipping(t *testing.T) {
	tbl := logs(5000)
	// Partition by timestamp so date restrictions align with chunks.
	e := buildEngine(t, tbl, colstore.Options{
		PartitionFields:  []string{"timestamp"},
		MaxChunkRows:     200,
		OptimizeElements: true,
	}, Options{})
	res, err := e.Query(`SELECT country, COUNT(*) FROM data WHERE date(timestamp) IN ("2011-01-05") GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunksSkipped == 0 {
		t.Error("restriction on materialized date() skipped nothing despite timestamp partitioning")
	}
}

func TestEngineErrors(t *testing.T) {
	tbl := logs(200)
	e := buildEngine(t, tbl, colstore.Options{}, Options{})
	for _, q := range []string{
		`SELECT nope FROM data;`,
		`SELECT country FROM data GROUP BY country ORDER BY nothere;`,
		`SELECT latency FROM data GROUP BY country;`,
		`SELECT SUM(country) FROM data;`,
		`SELECT AVG(table_name) FROM data;`,
		`SELECT bogus(latency) FROM data;`,
		`SELECT MIN(*) FROM data;`,
		`SELECT country, COUNT(*) FROM data WHERE latency IN ("abc") GROUP BY country;`,
		`not sql at all`,
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q succeeded, want error", q)
		}
	}
}

func TestCumulativeStats(t *testing.T) {
	tbl := logs(1000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	for i := 0; i < 3; i++ {
		if _, err := e.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Queries != 3 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.ChunksTotal == 0 || st.RowsTotal != 3000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	tbl := logs(500)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	res, err := e.Query(`SELECT MIN(country), MAX(country) FROM data;`)
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Rows[0][0].Str(), res.Rows[0][1].Str()
	counts := map[string]bool{}
	for _, c := range tbl.Column("country").Strs {
		counts[c] = true
	}
	for c := range counts {
		if c < min || c > max {
			t.Errorf("country %q outside [%q, %q]", c, min, max)
		}
	}
}

func TestEmptyResultQueries(t *testing.T) {
	tbl := logs(300)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	res, err := e.Query(`SELECT country, COUNT(*) FROM data WHERE country IN ("zz") GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("got %d rows for impossible restriction", len(res.Rows))
	}
	if res.Stats.ChunksSkipped != res.Stats.ChunksTotal {
		t.Errorf("impossible restriction scanned chunks: %+v", res.Stats)
	}
	// Global aggregate over empty selection.
	res2, err := e.Query(`SELECT COUNT(*) FROM data WHERE country IN ("zz");`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 0 {
		// A global COUNT over nothing legitimately yields no groups in
		// this engine (PowerDrill's UI never issues ungrouped queries);
		// document the behaviour rather than assert SQL semantics.
		t.Logf("global count over empty selection: %d rows", len(res2.Rows))
	}
}

func BenchmarkQuery1CountsArray(b *testing.B) {
	tbl := logs(100_000)
	e := buildEngine(b, tbl, colstore.Options{OptimizeElements: true}, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDrillDownWithSkipping(b *testing.B) {
	tbl := logs(100_000)
	e := buildEngine(b, tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     5000,
		OptimizeElements: true,
	}, Options{ResultCacheBytes: 64 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT user, COUNT(*) as c FROM data WHERE country IN ("ch") GROUP BY user ORDER BY c DESC LIMIT 10;`); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLazyShardedDictionaries runs queries against a store whose string
// dictionaries load sub-dictionaries on demand (Section 5): results must
// match the fully resident layout, and lookups must actually trigger
// shard loads.
func TestLazyShardedDictionaries(t *testing.T) {
	tbl := logs(3000)
	resident := buildEngine(t, tbl, chunkedOpts(), Options{})
	lazyOpts := chunkedOpts()
	lazyOpts.StringDict = colstore.StringDictSharded
	lazyOpts.ShardedDictSize = 64
	lazyOpts.LazyDicts = true
	lazy := buildEngine(t, tbl, lazyOpts, Options{})

	queries := []string{
		`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC, country ASC LIMIT 10;`,
		`SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC, table_name ASC LIMIT 10;`,
		`SELECT user, COUNT(*) FROM data WHERE country IN ("de", "fr") GROUP BY user;`,
	}
	for _, q := range queries {
		a, err := resident.Query(q)
		if err != nil {
			t.Fatalf("resident %q: %v", q, err)
		}
		b, err := lazy.Query(q)
		if err != nil {
			t.Fatalf("lazy %q: %v", q, err)
		}
		ga := append([][]value.Value{}, a.Rows...)
		gb := append([][]value.Value{}, b.Rows...)
		sortRows(ga)
		sortRows(gb)
		if !equalRows(ga, gb) {
			t.Fatalf("lazy dictionaries changed results for %q", q)
		}
	}
	// The high-cardinality dictionary must have loaded shards on demand.
	sharded, ok := lazy.Store().Column("table_name").Dict.(*dict.Sharded)
	if !ok {
		t.Fatal("table_name dictionary is not sharded")
	}
	if sharded.Loads() == 0 {
		t.Error("no sub-dictionary loads despite lazy mode")
	}
	if sharded.ResidentShards() == sharded.Shards() {
		t.Log("note: every shard resident (top-10 lookups touched all ranges)")
	}
}
