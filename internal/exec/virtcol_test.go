package exec

import (
	"fmt"
	"sync"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/memmgr"
)

// virtcolQueries is an expression-heavy drill-down slice: a virtual
// group-by field, a multi-column group-by (composite virtual column), and
// a restriction on a virtual field — everything that triggers
// materialization.
func virtcolQueries() []string {
	return []string{
		`SELECT date(timestamp) AS d, COUNT(*) AS c FROM data GROUP BY d ORDER BY d ASC;`,
		`SELECT country, table_name, COUNT(*) AS c FROM data GROUP BY country, table_name ORDER BY c DESC, country ASC, table_name ASC LIMIT 20;`,
		`SELECT table_name, SUM(latency) AS s FROM data WHERE upper(country) = "DE" GROUP BY table_name ORDER BY s DESC, table_name ASC LIMIT 10;`,
	}
}

// TestVirtualColumnBudgetedBitIdentical is the PR's acceptance test: a
// session that materializes virtual columns under a 25% budget must (1)
// answer bit-for-bit like the resident store across repeated passes —
// virtual chunks evicted in between reload from the sidecar, not from a
// re-materialization — (2) keep every materialization inside the budget
// (no unevictable registry bytes; steady-state resident ≤ budget), and
// (3) prune chunks via the persisted virtual column's spans
// (SkippedChunks > 0 on the restricted repeat).
func TestVirtualColumnBudgetedBitIdentical(t *testing.T) {
	dir := savedReorderedStore(t, 4000, "zippy")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	budget := residentFootprint(t, eagerStore) / 4
	mgr := memmgr.New(budget, "2q")
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	lazy := New(lazyStore, Options{Parallelism: 2})

	var restrictedRepeat QueryStats
	for pass := 0; pass < 3; pass++ {
		for _, q := range virtcolQueries() {
			want, err := eager.Query(q)
			if err != nil {
				t.Fatalf("eager %s: %v", q, err)
			}
			got, err := lazy.Query(q)
			if err != nil {
				t.Fatalf("lazy pass %d %s: %v", pass, q, err)
			}
			assertSameResult(t, fmt.Sprintf("pass %d %s", pass, q), want, got)
			if pass > 0 && got.Stats.SkippedChunks > 0 {
				restrictedRepeat = got.Stats
			}
		}
	}
	// Everything materialized joined the budget: nothing fell back to the
	// unevictable registry...
	if unmanaged := lazyStore.UnevictableVirtualBytes(); unmanaged != 0 {
		t.Fatalf("unevictable virtual bytes = %d, want 0 (all budgeted)", unmanaged)
	}
	for _, name := range []string{"date(timestamp)", "upper(country)"} {
		if !lazyStore.HasColumn(name) {
			t.Fatalf("virtual column %q not registered", name)
		}
	}
	// ...and steady-state residency respects the budget.
	if st := mgr.Stats(); st.ResidentBytes > budget {
		t.Fatalf("resident %d bytes > budget %d after queries finished", st.ResidentBytes, budget)
	}
	// The restriction on the persisted virtual column pruned from spans.
	if restrictedRepeat.SkippedChunks == 0 {
		t.Fatal("no repeat query pruned chunks via virtual-column spans")
	}
}

// TestVirtualSpanPruningAcrossReopen: a later session that merely reopens
// the store sees the previous session's materializations — no
// re-materialization scan — and prunes chunks from the sidecar's spans on
// its very first restricted query.
func TestVirtualSpanPruningAcrossReopen(t *testing.T) {
	dir := savedReorderedStore(t, 4000, "zippy")
	first, _, err := colstore.OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT table_name, COUNT(*) AS c FROM data WHERE upper(country) = "DE" GROUP BY table_name ORDER BY c DESC, table_name ASC LIMIT 10;`
	want, err := New(first, Options{Parallelism: 2}).Query(q)
	if err != nil {
		t.Fatal(err)
	}

	reopened, _, err := colstore.OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.HasColumn("upper(country)") {
		t.Fatal("reopened store does not know the persisted virtual column")
	}
	got, err := New(reopened, Options{Parallelism: 2}).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, got)
	if got.Stats.SkippedChunks == 0 {
		t.Fatalf("first query after reopen pruned nothing: %+v", got.Stats)
	}
	if got.Stats.ActiveChunks == got.Stats.ChunksTotal {
		t.Fatalf("residency analysis treated the virtual restriction as all-active: %+v", got.Stats)
	}
}

// TestVirtualColumnConcurrentBudgeted hammers a tightly budgeted store
// with concurrent expression queries: materialization, sidecar persistence,
// eviction and reload racing across goroutines must stay bit-for-bit
// correct. Run with -race.
func TestVirtualColumnConcurrentBudgeted(t *testing.T) {
	dir := savedReorderedStore(t, 3000, "zippy")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	queries := virtcolQueries()
	wants := make([]*Result, len(queries))
	for i, q := range queries {
		if wants[i], err = eager.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	budget := residentFootprint(t, eagerStore) / 4
	lazyStore, _, err := colstore.OpenLazy(dir, memmgr.New(budget, "arc"))
	if err != nil {
		t.Fatal(err)
	}
	lazy := New(lazyStore, Options{Parallelism: 2})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (g + rep) % len(queries)
				got, err := lazy.Query(queries[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d rep %d: %w", g, rep, err)
					return
				}
				if len(got.Rows) != len(wants[i].Rows) {
					errs <- fmt.Errorf("goroutine %d rep %d: %d vs %d rows", g, rep, len(got.Rows), len(wants[i].Rows))
					return
				}
				for r := range got.Rows {
					for c := range got.Rows[r] {
						if !got.Rows[r][c].Equal(wants[i].Rows[r][c]) {
							errs <- fmt.Errorf("goroutine %d rep %d row %d col %d: %v != %v",
								g, rep, r, c, got.Rows[r][c], wants[i].Rows[r][c])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestVirtualColumnReuseAfterClose: Store.Close between queries must not
// strand persisted virtual columns — handles reopen on demand.
func TestVirtualColumnReuseAfterClose(t *testing.T) {
	dir := savedReorderedStore(t, 3000, "zippy")
	mgr := memmgr.New(1, "2q") // evict everything on release: every query reloads
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	lazy := New(lazyStore, Options{Parallelism: 2})
	q := virtcolQueries()[0]
	want, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := lazyStore.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := lazy.Query(q)
	if err != nil {
		t.Fatalf("query after Close: %v", err)
	}
	assertSameResult(t, q, want, got)
}
