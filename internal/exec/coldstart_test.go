package exec

import (
	"sync"
	"testing"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/sql"
	"powerdrill/internal/workload"
)

// coldStartQueries exercises skipping, masks, composites, virtual fields,
// row scans and every aggregate over the query-log schema.
var coldStartQueries = []string{
	`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`,
	`SELECT table_name, SUM(latency) AS s FROM data GROUP BY table_name ORDER BY s DESC LIMIT 5;`,
	`SELECT country, table_name, COUNT(*) AS c FROM data GROUP BY country, table_name ORDER BY c DESC, country ASC, table_name ASC LIMIT 20;`,
	`SELECT country, AVG(latency) AS a FROM data WHERE latency > 100 GROUP BY country ORDER BY a DESC LIMIT 10;`,
	`SELECT date(timestamp), MIN(latency), MAX(latency) FROM data GROUP BY date(timestamp) ORDER BY date(timestamp) ASC LIMIT 15;`,
	`SELECT user, COUNT(*) AS c FROM data WHERE country IN ("US", "DE") GROUP BY user ORDER BY c DESC, user ASC LIMIT 10;`,
	`SELECT COUNT(DISTINCT user) FROM data;`,
	`SELECT country, latency FROM data WHERE latency > 900 ORDER BY latency DESC, country ASC LIMIT 25;`,
}

// savedWorkloadStore persists a partitioned query-log store and returns its
// directory.
func savedWorkloadStore(t *testing.T, rows int) string {
	t.Helper()
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 11})
	s, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := colstore.Save(s, dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	return dir
}

// residentFootprint sums the columns' in-memory sizes of an eagerly opened
// store.
func residentFootprint(t *testing.T, s *colstore.Store) int64 {
	t.Helper()
	var total int64
	for _, name := range s.Columns() {
		total += s.Column(name).Memory().Total()
	}
	return total
}

func assertSameResult(t *testing.T, query string, want, got *Result) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d vs %d rows", query, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !want.Rows[i][j].Equal(got.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d: %v != %v",
					query, i, j, want.Rows[i][j], got.Rows[i][j])
			}
		}
	}
}

// TestColdStartBudgetedMatchesResident is the acceptance test of the
// memory-manager PR: a store opened with a budget of ~25% of its resident
// footprint must answer the full workload bit-for-bit identically to a
// fully resident store, with evictions happening mid-workload, and must
// stay within budget (± the pinned working set) at every step.
func TestColdStartBudgetedMatchesResident(t *testing.T) {
	dir := savedWorkloadStore(t, 4000)
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	footprint := residentFootprint(t, eagerStore)
	budget := footprint / 4
	var maxColumn int64
	for _, name := range eagerStore.Columns() {
		if m := eagerStore.Column(name).Memory().Total(); m > maxColumn {
			maxColumn = m
		}
	}
	mgr := memmgr.New(budget, "2q")
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 4})
	lazy := New(lazyStore, Options{Parallelism: 4})

	var totalCold int64
	for pass := 0; pass < 2; pass++ {
		for _, q := range coldStartQueries {
			want, err := eager.Query(q)
			if err != nil {
				t.Fatalf("eager %s: %v", q, err)
			}
			got, err := lazy.Query(q)
			if err != nil {
				t.Fatalf("lazy %s: %v", q, err)
			}
			assertSameResult(t, q, want, got)
			totalCold += int64(got.Stats.ColdLoads)
			st := mgr.Stats()
			// Unpinned residency must respect the budget; transient pinned
			// bytes are bounded by one query's working set, which the
			// workload keeps to a handful of columns.
			if over := st.ResidentBytes - st.PinnedBytes; over > budget {
				t.Fatalf("evictable resident %d exceeds budget %d", over, budget)
			}
			if st.PinnedBytes != 0 {
				t.Fatalf("pinned bytes %d between queries", st.PinnedBytes)
			}
		}
	}
	st := mgr.Stats()
	if totalCold == 0 || st.ColdLoads == 0 {
		t.Fatal("no cold loads observed under a 25% budget")
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 25%% budget (footprint %d, budget %d)", footprint, budget)
	}
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d exceeds budget %d at rest", st.ResidentBytes, budget)
	}
}

// TestColdThenWarmStats pins down the Stats contract: cold loads on first
// touch, zero cold loads on a warm repeat (budget large enough to hold the
// query's working set).
func TestColdThenWarmStats(t *testing.T) {
	dir := savedWorkloadStore(t, 2000)
	mgr := memmgr.New(0, "2q") // unlimited: everything stays warm
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	e := New(lazyStore, Options{})
	q := `SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 5;`
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ColdLoads == 0 || first.Stats.ColdBytesLoaded <= 0 || first.Stats.DiskBytesRead <= 0 {
		t.Fatalf("first query cold stats = %+v", first.Stats)
	}
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ColdLoads != 0 || second.Stats.ColdBytesLoaded != 0 {
		t.Fatalf("warm repeat reported cold loads: %+v", second.Stats)
	}
	cum := e.Stats()
	if cum.ColdLoads != int64(first.Stats.ColdLoads) {
		t.Fatalf("cumulative cold loads %d, want %d", cum.ColdLoads, first.Stats.ColdLoads)
	}
}

// TestColdStartConcurrentQueries runs the budgeted lazy engine from many
// goroutines (forcing eviction/reload races) and checks every answer
// against the resident engine. Run with -race.
func TestColdStartConcurrentQueries(t *testing.T) {
	dir := savedWorkloadStore(t, 3000)
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	budget := residentFootprint(t, eagerStore) / 4
	mgr := memmgr.New(budget, "arc")
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	lazy := New(lazyStore, Options{Parallelism: 2})

	// Precompute expected results sequentially.
	want := make(map[string]*Result, len(coldStartQueries))
	for _, q := range coldStartQueries {
		r, err := eager.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = r
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3*len(coldStartQueries); i++ {
				q := coldStartQueries[(w+i)%len(coldStartQueries)]
				got, err := lazy.Query(q)
				if err != nil {
					t.Errorf("worker %d: %s: %v", w, q, err)
					return
				}
				assertSameResult(t, q, want[q], got)
			}
		}(w)
	}
	wg.Wait()
	if st := mgr.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes %d after all queries finished", st.PinnedBytes)
	}
}

func TestGateAcquireSemantics(t *testing.T) {
	g := NewGate(4)
	if got := g.AcquireUpTo(3); got != 3 {
		t.Fatalf("first acquire = %d, want 3", got)
	}
	if got := g.AcquireUpTo(3); got != 1 {
		t.Fatalf("second acquire = %d, want remaining 1", got)
	}
	if g.InUse() != 4 {
		t.Fatalf("in use = %d, want 4", g.InUse())
	}
	// A full gate blocks until a release.
	done := make(chan int, 1)
	go func() { done <- g.AcquireUpTo(2) }()
	select {
	case <-done:
		t.Fatal("acquire succeeded on a full gate")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(3)
	select {
	case got := <-done:
		if got != 2 {
			t.Fatalf("post-release acquire = %d, want 2", got)
		}
	case <-time.After(time.Second):
		t.Fatal("acquire did not wake after release")
	}
	g.Release(2)
	g.Release(1)
	if g.InUse() != 0 {
		t.Fatalf("in use = %d after all releases", g.InUse())
	}
	if got := g.AcquireUpTo(0); got != 1 {
		t.Fatalf("acquire(0) = %d, want clamp to 1", got)
	}
	g.Release(1)
}

// TestSharedGateBoundsWorkers runs many concurrent queries through engines
// sharing one gate and asserts the total granted workers never exceed the
// gate's capacity, while results stay identical to the sequential engine.
func TestSharedGateBoundsWorkers(t *testing.T) {
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: 3000, Seed: 5})
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     200,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := NewGate(3)
	shared := New(store, Options{Parallelism: 8, Gate: gate})
	sequential := New(store, Options{Parallelism: 1})

	stmt, err := sql.Parse(`SELECT country, COUNT(*) AS c, SUM(latency) AS s FROM data GROUP BY country ORDER BY c DESC, country ASC;`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sequential.Run(stmt)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	maxInUse := 0
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := gate.InUse()
			mu.Lock()
			if n > maxInUse {
				maxInUse = n
			}
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, err := shared.Run(stmt)
				if err != nil {
					t.Error(err)
					return
				}
				assertSameResult(t, "shared-gate", want, got)
			}
		}()
	}
	wg.Wait()
	close(stop)
	mu.Lock()
	defer mu.Unlock()
	if maxInUse > gate.Capacity() {
		t.Fatalf("observed %d workers in use, capacity %d", maxInUse, gate.Capacity())
	}
	if gate.InUse() != 0 {
		t.Fatalf("gate still holds %d workers", gate.InUse())
	}
}

// BenchmarkColdOpen measures a first-touch query against a lazily opened
// store — the paper's Figure 5 cold-start path at column granularity.
func BenchmarkColdOpen(b *testing.B) {
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: 50_000, Seed: 3})
	s, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     5000,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := colstore.Save(s, dir, "zippy"); err != nil {
		b.Fatal(err)
	}
	q := `SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lazyStore, _, err := colstore.OpenLazy(dir, memmgr.New(0, "2q"))
		if err != nil {
			b.Fatal(err)
		}
		e := New(lazyStore, Options{})
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
