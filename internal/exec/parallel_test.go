package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"powerdrill/internal/sql"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// parallelQueries is the mixed workload the concurrency tests run: group-bys
// (single and composite keys), every aggregate, selective and non-selective
// restrictions, virtual fields, HAVING, row scans with and without LIMIT.
var parallelQueries = []string{
	`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC, country ASC;`,
	`SELECT country, table_name, COUNT(*) AS c FROM data GROUP BY country, table_name ORDER BY c DESC, country ASC, table_name ASC LIMIT 10;`,
	`SELECT table_name, SUM(latency) AS s, AVG(latency) AS a FROM data GROUP BY table_name ORDER BY s DESC, table_name ASC LIMIT 25;`,
	`SELECT country, MIN(latency) AS lo, MAX(latency) AS hi FROM data WHERE latency > 100 GROUP BY country ORDER BY country ASC;`,
	`SELECT COUNT(*) AS c FROM data WHERE country = "us";`,
	`SELECT country, COUNT(DISTINCT user) AS u FROM data GROUP BY country ORDER BY u DESC, country ASC LIMIT 5;`,
	`SELECT country, COUNT(*) AS c FROM data WHERE country IN ("de", "fr", "jp") GROUP BY country ORDER BY c DESC, country ASC;`,
	`SELECT month(timestamp) AS m, COUNT(*) AS c FROM data GROUP BY m ORDER BY m ASC;`,
	`SELECT table_name, COUNT(*) AS c FROM data GROUP BY table_name HAVING c > 10 ORDER BY c DESC, table_name ASC;`,
	`SELECT country, latency FROM data WHERE latency > 4000 ORDER BY latency DESC LIMIT 20;`,
	`SELECT country, user FROM data WHERE country = "de" LIMIT 7;`,
}

// resultFingerprint renders a result to a comparable string.
func resultFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	out := fmt.Sprintf("cols=%v\n", res.Columns)
	for _, row := range res.Rows {
		for _, v := range row {
			out += v.String() + "\x1f"
		}
		out += "\n"
	}
	return out
}

// runAll executes the workload sequentially on one engine and returns the
// per-query fingerprints.
func runAll(t *testing.T, e *Engine) map[string]string {
	t.Helper()
	out := make(map[string]string, len(parallelQueries))
	for _, q := range parallelQueries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		out[q] = resultFingerprint(t, res)
	}
	return out
}

// TestParallelMatchesSequential asserts the parallel engine returns
// bit-for-bit the sequential engine's results, with and without the result
// cache, on cold and warm runs.
func TestParallelMatchesSequential(t *testing.T) {
	tbl := logs(8000)
	for _, cacheBytes := range []int64{0, 32 << 20} {
		name := "nocache"
		if cacheBytes > 0 {
			name = "cache"
		}
		t.Run(name, func(t *testing.T) {
			seq := buildEngine(t, tbl, chunkedOpts(), Options{Parallelism: 1, ResultCacheBytes: cacheBytes})
			par := buildEngine(t, tbl, chunkedOpts(), Options{Parallelism: runtime.NumCPU(), ResultCacheBytes: cacheBytes})
			want := runAll(t, seq)
			// Two passes: the second exercises the cache-hit path on
			// fully-active chunks.
			for pass := 0; pass < 2; pass++ {
				got := runAll(t, par)
				for _, q := range parallelQueries {
					if got[q] != want[q] {
						t.Errorf("pass %d: %s\nparallel:\n%s\nsequential:\n%s", pass, q, got[q], want[q])
					}
				}
			}
		})
	}
}

// TestConcurrentQueries hammers one parallel engine from many goroutines —
// the -race test for the whole execution path: shared plan-time
// materialization of virtual fields, the synchronized result cache, worker
// fan-out, and stats accumulation.
func TestConcurrentQueries(t *testing.T) {
	tbl := logs(6000)
	seq := buildEngine(t, tbl, chunkedOpts(), Options{Parallelism: 1})
	want := runAll(t, seq)

	eng := buildEngine(t, tbl, chunkedOpts(), Options{ResultCacheBytes: 16 << 20})
	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the workload so different queries overlap.
				for i := range parallelQueries {
					q := parallelQueries[(i+g+r)%len(parallelQueries)]
					res, err := eng.Query(q)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %q: %v", g, q, err)
						return
					}
					if got := resultFingerprint(t, res); got != want[q] {
						errs <- fmt.Errorf("goroutine %d: %q diverged from sequential result", g, q)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The cumulative counters must account for every query exactly once.
	stats := eng.Stats()
	if want := int64(goroutines * rounds * len(parallelQueries)); stats.Queries != want {
		t.Errorf("Stats.Queries = %d, want %d", stats.Queries, want)
	}
}

// TestConcurrentRunPartial exercises the distributed leaf path (RunPartial)
// under concurrency: partials for the same statement must agree with each
// other regardless of which worker scanned which chunk.
func TestConcurrentRunPartial(t *testing.T) {
	tbl := logs(5000)
	eng := buildEngine(t, tbl, chunkedOpts(), Options{ResultCacheBytes: 8 << 20})
	const goroutines = 6
	q := `SELECT country, COUNT(*) AS c, SUM(latency) AS s FROM data WHERE latency > 50 GROUP BY country;`

	partials := make([]*Partial, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stmt, err := sql.Parse(q)
			if err != nil {
				errs[g] = err
				return
			}
			partials[g], errs[g] = eng.RunPartial(stmt)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	want := partialGroupsFingerprint(partials[0])
	for g := 1; g < goroutines; g++ {
		if got := partialGroupsFingerprint(partials[g]); got != want {
			t.Errorf("goroutine %d partial diverged:\n%s\nwant:\n%s", g, got, want)
		}
	}
}

// partialGroupsFingerprint renders a Partial's groups sorted by key.
func partialGroupsFingerprint(p *Partial) string {
	lines := make([]string, 0, len(p.Groups))
	for _, g := range p.Groups {
		line := ""
		for _, k := range g.Keys {
			line += k.String() + "|"
		}
		for _, c := range g.Cells {
			line += fmt.Sprintf("count=%d sumI=%d sumF=%g|", c.Count, c.SumI, c.SumF)
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestParallelFloatSumDeterminism pins the chunk-ordered merge: float
// addition is not associative, so summing chunk partials in worker-finish
// order would drift in the last ULPs run to run. The magnitudes below make
// any reordering change the result, and the assertion is exact equality
// with the sequential engine.
func TestParallelFloatSumDeterminism(t *testing.T) {
	const rows = 4000
	g := make([]string, rows)
	f := make([]float64, rows)
	for i := 0; i < rows; i++ {
		g[i] = fmt.Sprintf("g%d", i%3)
		// Alternate huge and tiny addends so partial-sum order matters.
		if i%2 == 0 {
			f[i] = 1e16
		} else {
			f[i] = 1.0 + float64(i%7)/3.0
		}
	}
	tbl := table.New("data")
	tbl.AddStringColumn("g", g)
	tbl.AddFloat64Column("f", f)
	opts := chunkedOpts()
	opts.PartitionFields = []string{"g"}
	opts.MaxChunkRows = 100

	q := `SELECT g, SUM(f) AS s, AVG(f) AS a FROM data GROUP BY g ORDER BY g ASC;`
	seq := buildEngine(t, tbl, opts, Options{Parallelism: 1})
	want, err := seq.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	par := buildEngine(t, tbl, opts, Options{Parallelism: runtime.NumCPU() * 2})
	for run := 0; run < 5; run++ {
		got, err := par.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("run %d: %d rows, want %d", run, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				a, b := want.Rows[i][j], got.Rows[i][j]
				if a.Kind() == b.Kind() && a.Kind() == value.KindFloat64 {
					if a.Float() != b.Float() {
						t.Errorf("run %d row %d col %d: parallel %v != sequential %v (diff %g)",
							run, i, j, b.Float(), a.Float(), b.Float()-a.Float())
					}
				} else if a.Compare(b) != 0 {
					t.Errorf("run %d row %d col %d: parallel %v != sequential %v", run, i, j, b, a)
				}
			}
		}
	}
}

// TestAppendHex32 pins the manual hex encoder to fmt's output.
func TestAppendHex32(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xf, 0x10, 0xdeadbeef, 0xffffffff} {
		got := string(appendHex32(nil, v))
		want := fmt.Sprintf("%08x", v)
		if got != want {
			t.Errorf("appendHex32(%#x) = %q, want %q", v, got, want)
		}
	}
}

// TestParallelRowScanOrder pins the row-scan guarantee: parallel scans
// return rows in chunk order, identical to sequential, including under an
// early-stop LIMIT.
func TestParallelRowScanOrder(t *testing.T) {
	tbl := logs(4000)
	seq := buildEngine(t, tbl, chunkedOpts(), Options{Parallelism: 1})
	par := buildEngine(t, tbl, chunkedOpts(), Options{Parallelism: runtime.NumCPU()})
	for _, q := range []string{
		`SELECT country, latency FROM data WHERE latency > 500;`,
		`SELECT country, latency FROM data WHERE latency > 500 LIMIT 13;`,
		`SELECT user FROM data LIMIT 1;`,
		`SELECT user FROM data LIMIT 0;`,
	} {
		a, err := seq.Query(q)
		if err != nil {
			t.Fatalf("seq %q: %v", q, err)
		}
		b, err := par.Query(q)
		if err != nil {
			t.Fatalf("par %q: %v", q, err)
		}
		if fa, fb := resultFingerprint(t, a), resultFingerprint(t, b); fa != fb {
			t.Errorf("%s\nsequential:\n%s\nparallel:\n%s", q, fa, fb)
		}
	}
}
