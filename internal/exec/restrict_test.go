package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/sql"
)

// TestClassifyConsistentWithMask is the core safety property of skipping
// (Section 2.4): for every chunk, the tri-state classification computed
// from chunk-dictionaries alone must agree with the row-level mask —
// "none" means an all-zero mask, "all" means an all-ones mask. If this
// property breaks, skipping silently changes query results.
func TestClassifyConsistentWithMask(t *testing.T) {
	tbl := logs(3000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})

	// A zoo of WHERE clauses: every operator, nested trees, ranges,
	// impossible and tautological predicates.
	preds := []string{
		`country IN ("de")`,
		`country IN ("de", "fr", "zz")`,
		`country NOT IN ("us")`,
		`country = "ch"`,
		`country != "ch"`,
		`NOT country = "ch"`,
		`latency > 500`,
		`latency <= 100`,
		`latency >= 0`,
		`latency < -5`,
		`latency > 100 AND latency < 2000`,
		`country IN ("de") AND latency > 500`,
		`country IN ("de") OR country IN ("fr")`,
		`NOT (country IN ("de") OR latency > 100)`,
		`country = "de" AND NOT latency <= 50 OR user IN ("user0001")`,
		`table_name != "nope"`,
		`latency = 105`,
		`latency > 100.5`,
		`country IN ("zz")`,
	}
	for _, p := range preds {
		stmt, err := sql.Parse(`SELECT country, COUNT(*) FROM data WHERE ` + p + ` GROUP BY country;`)
		if err != nil {
			t.Fatalf("parse %q: %v", p, err)
		}
		r, err := e.compileRestriction(stmt.Where, e.store.NewPinSet(), nil)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		for ci := 0; ci < e.store.NumChunks(); ci++ {
			state := r.classify(e, ci)
			mask, err := r.mask(e, nil, ci)
			if err != nil {
				t.Fatalf("mask %q chunk %d: %v", p, ci, err)
			}
			switch state {
			case activeNone:
				if !mask.None() {
					t.Fatalf("%q chunk %d: classified none but %d rows match", p, ci, mask.Count())
				}
			case activeAll:
				if !mask.All() {
					t.Fatalf("%q chunk %d: classified all but only %d/%d rows match",
						p, ci, mask.Count(), mask.Len())
				}
			}
		}
	}
}

// TestClassifyRandomTrees drives the same property through randomly
// generated boolean trees.
func TestClassifyRandomTrees(t *testing.T) {
	tbl := logs(2000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	r := rand.New(rand.NewSource(17))

	countries := []string{"de", "us", "fr", "jp", "zz", "at"}
	var genPred func(depth int) string
	genPred = func(depth int) string {
		if depth <= 0 || r.Intn(3) == 0 {
			switch r.Intn(4) {
			case 0:
				return fmt.Sprintf(`country IN (%q, %q)`, countries[r.Intn(len(countries))], countries[r.Intn(len(countries))])
			case 1:
				return fmt.Sprintf(`latency > %d`, r.Intn(3000))
			case 2:
				return fmt.Sprintf(`country = %q`, countries[r.Intn(len(countries))])
			default:
				return fmt.Sprintf(`latency <= %d`, r.Intn(3000))
			}
		}
		switch r.Intn(3) {
		case 0:
			return "(" + genPred(depth-1) + " AND " + genPred(depth-1) + ")"
		case 1:
			return "(" + genPred(depth-1) + " OR " + genPred(depth-1) + ")"
		default:
			return "NOT " + genPred(depth-1)
		}
	}

	for trial := 0; trial < 60; trial++ {
		p := genPred(3)
		stmt, err := sql.Parse(`SELECT COUNT(*) FROM data WHERE ` + p + `;`)
		if err != nil {
			t.Fatalf("parse %q: %v", p, err)
		}
		rt, err := e.compileRestriction(stmt.Where, e.store.NewPinSet(), nil)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		for ci := 0; ci < e.store.NumChunks(); ci++ {
			state := rt.classify(e, ci)
			mask, err := rt.mask(e, nil, ci)
			if err != nil {
				t.Fatal(err)
			}
			if state == activeNone && !mask.None() {
				t.Fatalf("%q chunk %d: none but %d match", p, ci, mask.Count())
			}
			if state == activeAll && !mask.All() {
				t.Fatalf("%q chunk %d: all but %d/%d match", p, ci, mask.Count(), mask.Len())
			}
		}
	}
}

// TestRangeCompilation checks the global-id interval construction for
// ordering operators, including fractional bounds against int columns.
func TestRangeCompilation(t *testing.T) {
	tbl := logs(1000)
	e := buildEngine(t, tbl, colstore.Options{}, Options{})
	lat := tbl.Column("latency").Ints

	count := func(pred func(int64) bool) int64 {
		var n int64
		for _, v := range lat {
			if pred(v) {
				n++
			}
		}
		return n
	}
	for _, tc := range []struct {
		where string
		want  int64
	}{
		{`latency > 500`, count(func(v int64) bool { return v > 500 })},
		{`latency >= 500`, count(func(v int64) bool { return v >= 500 })},
		{`latency < 500`, count(func(v int64) bool { return v < 500 })},
		{`latency <= 500`, count(func(v int64) bool { return v <= 500 })},
		{`latency > 499.5`, count(func(v int64) bool { return v >= 500 })},
		{`latency < 499.5`, count(func(v int64) bool { return v <= 499 })},
		{`latency >= 499.5`, count(func(v int64) bool { return v >= 500 })},
		{`latency <= 499.5`, count(func(v int64) bool { return v <= 499 })},
		{`500 < latency`, count(func(v int64) bool { return v > 500 })},
		{`500 >= latency`, count(func(v int64) bool { return v <= 500 })},
	} {
		res, err := e.Query(`SELECT COUNT(*) FROM data WHERE ` + tc.where + `;`)
		if err != nil {
			t.Fatalf("%q: %v", tc.where, err)
		}
		var got int64
		if len(res.Rows) > 0 {
			got = res.Rows[0][0].Int()
		}
		if got != tc.want {
			t.Errorf("%q = %d, want %d", tc.where, got, tc.want)
		}
	}
}

// TestRestrictionErrorPaths covers compile failures.
func TestRestrictionErrorPaths(t *testing.T) {
	tbl := logs(200)
	e := buildEngine(t, tbl, colstore.Options{}, Options{})
	for _, q := range []string{
		`SELECT COUNT(*) FROM data WHERE country > 5;`,      // kind clash in range
		`SELECT COUNT(*) FROM data WHERE country = 5;`,      // kind clash in equality
		`SELECT COUNT(*) FROM data WHERE missing IN ("x");`, // unknown column
		`SELECT COUNT(*) FROM data WHERE latency + 1;`,      // non-predicate
		`SELECT COUNT(*) FROM data WHERE latency IN ("s");`, // kind clash in IN
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q succeeded, want error", q)
		}
	}
	// Float-vs-int coercions that can never match must yield empty
	// results, not errors (1.5 can never equal an integer).
	res, err := e.Query(`SELECT COUNT(*) FROM data WHERE latency = 1.5;`)
	if err != nil {
		t.Fatalf("fractional equality: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("latency = 1.5 matched %v", res.Rows)
	}
	// Row-predicate fallback: column-to-column comparison works, just
	// cannot skip.
	res2, err := e.Query(`SELECT COUNT(*) FROM data WHERE latency = latency;`)
	if err != nil {
		t.Fatalf("column-to-column: %v", err)
	}
	if res2.Rows[0][0].Int() != 200 {
		t.Errorf("latency = latency matched %v rows", res2.Rows[0][0])
	}
	// Non-literal IN member falls back to row evaluation.
	res3, err := e.Query(`SELECT COUNT(*) FROM data WHERE latency IN (latency);`)
	if err != nil {
		t.Fatalf("non-literal IN: %v", err)
	}
	if res3.Rows[0][0].Int() != 200 {
		t.Errorf("latency IN (latency) matched %v rows", res3.Rows[0][0])
	}
}

func TestSortAndContainsHelpers(t *testing.T) {
	a := []uint32{5, 1, 4, 1, 3}
	sortUint32s(a)
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			t.Fatal("sortUint32s did not sort")
		}
	}
	if !containsUint32(a, 4) || containsUint32(a, 2) || containsUint32(nil, 1) {
		t.Error("containsUint32 broken")
	}
}
