// Package exec is PowerDrill's query engine: it evaluates the SQL subset
// over a colstore.Store using the mechanisms of Sections 2.4, 2.5 and 5 —
// chunk skipping via chunk-dictionaries, dense counts-array group-by,
// materialized virtual fields, per-chunk result caching for fully active
// chunks, and approximate count distinct.
//
// # Concurrency model
//
// The engine is safe for concurrent Query/Run/RunPartial calls, and a single
// query fans its chunk work out over Options.Parallelism workers — the
// in-process analogue of the paper's Section 4 execution tree, where every
// leaf scans its chunks independently and partial aggregates merge upward.
//
// The invariants that make this work:
//
//   - Store data is immutable after load. Chunk-dictionaries, element
//     sequences and global dictionaries are never written once built, so the
//     scan phase (classify → mask → aggregate) takes no locks at all. The
//     two exceptions hide their own synchronization: the lazily-loaded
//     sharded dictionary (dict.Sharded) and the colstore column registry,
//     which grows when a virtual field materializes.
//   - Planning is serialized by planMu. The plan phase is the only writer
//     (it may materialize virtual columns into the store); serializing it
//     keeps "check column exists → materialize → register" atomic without
//     slowing the scan phase, which runs outside the lock.
//   - Chunks are independent units of work. Workers claim chunk indices from
//     a shared counter and produce one partial per chunk plus per-worker
//     QueryStats; partials then merge in ascending chunk order on the
//     calling goroutine, so results — including order-sensitive float
//     sums — are bit-for-bit identical to the sequential engine's.
//   - Shared mutable state is wrapped, not sprinkled with locks: the result
//     cache is behind cache.Synchronized (its eviction policies mutate on
//     Get), and the engine's cumulative Stats accumulate under statsMu once
//     per query, from the already-merged per-query counters.
package exec

import (
	"fmt"
	"strings"
	"sync"

	"powerdrill/internal/cache"
	"powerdrill/internal/colstore"
	"powerdrill/internal/expr"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// Options configures an Engine.
type Options struct {
	// ResultCacheBytes bounds the per-chunk result cache; 0 disables it.
	ResultCacheBytes int64
	// CachePolicy selects the eviction policy: "lru", "2q" (default) or
	// "arc" — the Section 5 "Improved Cache Heuristics".
	CachePolicy string
	// SketchM is the m parameter of the count-distinct approximation
	// (default 2048, the paper's "couple of thousand").
	SketchM int
	// ExactDistinct computes COUNT(DISTINCT x) exactly (for accuracy
	// comparisons); costly for high-cardinality fields.
	ExactDistinct bool
	// DisableSkipping scans every chunk regardless of the restriction —
	// the ablation that isolates Section 2.2's contribution.
	DisableSkipping bool
	// Parallelism is the number of workers a single query fans its chunk
	// scans out over; 0 (the default) means runtime.GOMAXPROCS(0), and 1
	// recovers the fully sequential engine.
	Parallelism int
}

// Engine executes queries against one store (one shard). See the package
// comment for the concurrency model.
type Engine struct {
	store *colstore.Store
	opts  Options

	// planMu serializes query planning — the only phase that may mutate the
	// store (materializing virtual columns). Execution runs outside it.
	planMu sync.Mutex

	// resultCache is internally synchronized (cache.Synchronized); workers
	// and concurrent queries share it directly.
	resultCache cache.Cache

	statsMu sync.Mutex
	stats   Stats
}

// Stats accumulates execution counters across queries — the quantities the
// paper reports for production (Section 6).
type Stats struct {
	Queries       int64
	ChunksTotal   int64
	ChunksSkipped int64
	ChunksCached  int64
	ChunksScanned int64
	RowsTotal     int64
	RowsSkipped   int64
	RowsCached    int64
	RowsScanned   int64
	// CellsCovered counts rows × accessed columns over the whole store —
	// the paper's "cells" a hypothetical full scan would process.
	CellsCovered int64
	// CellsScanned counts rows × accessed columns actually scanned.
	CellsScanned int64
}

// QueryStats are the per-query counters.
type QueryStats struct {
	ChunksTotal   int
	ChunksSkipped int
	ChunksCached  int
	ChunksScanned int
	RowsScanned   int64
	RowsCached    int64
	RowsSkipped   int64
	CellsCovered  int64
	CellsScanned  int64
}

// Result is a finished query result.
type Result struct {
	Columns []string
	Rows    [][]value.Value
	Stats   QueryStats
}

// New creates an engine over a store.
func New(store *colstore.Store, opts Options) *Engine {
	if opts.SketchM <= 0 {
		opts.SketchM = 2048
	}
	e := &Engine{store: store, opts: opts}
	if opts.ResultCacheBytes > 0 {
		var inner cache.Cache
		switch opts.CachePolicy {
		case "lru":
			inner = cache.NewLRU(opts.ResultCacheBytes)
		case "arc":
			inner = cache.NewARC(opts.ResultCacheBytes)
		default:
			inner = cache.NewTwoQ(opts.ResultCacheBytes)
		}
		e.resultCache = cache.NewSynchronized(inner)
	}
	return e
}

// Store returns the engine's store.
func (e *Engine) Store() *colstore.Store { return e.store }

// Stats returns the cumulative counters.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// CacheStats returns the result cache's counters; ok is false when the
// cache is disabled.
func (e *Engine) CacheStats() (cache.Stats, bool) {
	if e.resultCache == nil {
		return cache.Stats{}, false
	}
	return e.resultCache.Stats(), true
}

// Query parses and runs a SQL query.
func (e *Engine) Query(src string) (*Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(stmt)
}

// Run executes a parsed statement. Planning serializes on planMu; the scan
// phase runs lock-free over the immutable store, fanned out over
// Options.Parallelism workers.
func (e *Engine) Run(stmt *sql.SelectStmt) (*Result, error) {
	e.planMu.Lock()
	p, err := e.plan(stmt)
	e.planMu.Unlock()
	if err != nil {
		return nil, err
	}
	var (
		res *Result
		qs  QueryStats
	)
	if p.rowScan {
		res, qs, err = e.executeRowScan(p)
		if err != nil {
			return nil, err
		}
	} else {
		var partials map[uint32][]accCell
		partials, qs, err = e.executeChunks(p)
		if err != nil {
			return nil, err
		}
		res, err = e.finalize(p, partials)
		if err != nil {
			return nil, err
		}
	}
	res.Stats = qs
	e.recordStats(qs)
	return res, nil
}

// recordStats folds one query's merged counters into the cumulative stats.
func (e *Engine) recordStats(qs QueryStats) {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stats.Queries++
	e.stats.ChunksTotal += int64(qs.ChunksTotal)
	e.stats.ChunksSkipped += int64(qs.ChunksSkipped)
	e.stats.ChunksCached += int64(qs.ChunksCached)
	e.stats.ChunksScanned += int64(qs.ChunksScanned)
	e.stats.RowsTotal += int64(e.store.NumRows())
	e.stats.RowsScanned += qs.RowsScanned
	e.stats.RowsCached += qs.RowsCached
	e.stats.RowsSkipped += qs.RowsSkipped
	e.stats.CellsCovered += qs.CellsCovered
	e.stats.CellsScanned += qs.CellsScanned
}

// storeRow adapts a (chunk, row) position to the expr.Row interface. It is
// confined to one goroutine; cols caches name resolution so per-row
// evaluation skips the store's registry lock.
type storeRow struct {
	e     *Engine
	chunk int
	row   int
	cols  map[string]*colstore.Column
}

func newStoreRow(e *Engine, chunk int) *storeRow {
	return &storeRow{e: e, chunk: chunk, cols: make(map[string]*colstore.Column, 4)}
}

// ColumnValue implements expr.Row.
func (r *storeRow) ColumnValue(name string) value.Value {
	col, ok := r.cols[name]
	if !ok {
		col = r.e.store.Column(name)
		r.cols[name] = col
	}
	if col == nil {
		return value.Value{}
	}
	return col.ValueAt(r.chunk, r.row)
}

// evalPredRow, exprLiteral and exprColumns keep restrict.go free of direct
// expr imports.
func evalPredRow(e sql.Expr, row expr.Row) (bool, error) { return expr.EvalPred(e, row) }

func exprLiteral(e sql.Expr) (value.Value, bool) { return expr.IsLiteral(e) }

func exprColumns(e sql.Expr) []string { return expr.Columns(e) }

// materializeOperand resolves an expression used as a restriction or
// group-by operand to a column name, materializing a virtual field when it
// is not a plain column reference (Section 5: expressions are computed once
// and stored in the datastore; restrictions on them can then skip chunks).
func (e *Engine) materializeOperand(x sql.Expr) (string, error) {
	if id, ok := x.(*sql.Ident); ok {
		if e.store.Column(id.Name) == nil {
			return "", fmt.Errorf("exec: unknown column %q", id.Name)
		}
		return id.Name, nil
	}
	key := x.String()
	if e.store.Column(key) != nil {
		return key, nil // already materialized by an earlier query
	}
	kind, err := expr.InferKind(x, func(col string) (value.Kind, bool) {
		c := e.store.Column(col)
		if c == nil {
			return value.KindInvalid, false
		}
		return c.Kind, true
	})
	if err != nil {
		return "", err
	}
	// Chunk-parallel evaluation: each worker fills its chunk's slice of
	// vals (disjoint regions, so no locks). The per-row interface dispatch
	// of expr.Eval makes this the costliest part of materialization.
	vals := make([]value.Value, e.store.NumRows())
	err = forEachChunk(e.store.NumChunks(), e.parallelism(), nil, func(_, ci int) error {
		row := newStoreRow(e, ci)
		base := e.store.Bounds[ci]
		rows := e.store.ChunkRows(ci)
		for r := 0; r < rows; r++ {
			row.row = r
			v, err := expr.Eval(x, row)
			if err != nil {
				return err
			}
			vals[base+r] = v
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if _, err := e.store.AddVirtualColumn(key, kind, vals); err != nil {
		return "", err
	}
	return key, nil
}

// aggFn enumerates aggregate functions.
type aggFn uint8

const (
	aggCount aggFn = iota
	aggSum
	aggMin
	aggMax
	aggAvg
	aggCountDistinct
)

// aggSpec is one aggregate in the select list.
type aggSpec struct {
	fn     aggFn
	argCol string // "" for COUNT(*)
}

// signature identifies the aggregate for result caching.
func (a aggSpec) signature() string {
	return fmt.Sprintf("%d(%s)", a.fn, a.argCol)
}

// outItem maps a select item to its source: a group key or an aggregate.
type outItem struct {
	name     string // output column name (alias or canonical expr)
	groupIdx int    // ≥0: index into group exprs
	aggIdx   int    // ≥0: index into aggSpecs
}

// plan is a compiled query.
type plan struct {
	stmt      *sql.SelectStmt
	where     *restriction // nil when no WHERE clause
	groupCols []string     // materialized group-by columns (one per group expr)
	groupKind []value.Kind
	composite string // composite column when len(groupCols) > 1
	aggs      []aggSpec
	items     []outItem
	rowScan   bool // no aggregates and no GROUP BY: plain projection
	// accessCols are the physical/virtual columns the query touches (for
	// cell accounting).
	accessCols []string
}

// plan compiles a statement.
func (e *Engine) plan(stmt *sql.SelectStmt) (*plan, error) {
	if stmt.From == "" {
		return nil, fmt.Errorf("exec: missing FROM")
	}
	p := &plan{stmt: stmt}
	access := map[string]bool{}

	// WHERE.
	if stmt.Where != nil {
		w, err := e.compileRestriction(stmt.Where)
		if err != nil {
			return nil, err
		}
		p.where = w
		w.columnsOf(access)
	}

	// GROUP BY columns (materialized).
	for _, g := range stmt.GroupBy {
		name, err := e.resolveGroupExpr(stmt, g)
		if err != nil {
			return nil, err
		}
		col, err := e.materializeOperand(name)
		if err != nil {
			return nil, err
		}
		p.groupCols = append(p.groupCols, col)
		p.groupKind = append(p.groupKind, e.store.Column(col).Kind)
		access[col] = true
	}

	// Select items: group keys and aggregates.
	hasAgg := false
	for _, item := range stmt.Items {
		if sql.HasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	p.rowScan = !hasAgg && len(stmt.GroupBy) == 0
	if p.rowScan && stmt.Having != nil {
		return nil, fmt.Errorf("exec: HAVING requires GROUP BY or aggregates")
	}

	for _, item := range stmt.Items {
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
		}
		switch {
		case p.rowScan:
			col, err := e.materializeOperand(item.Expr)
			if err != nil {
				return nil, err
			}
			access[col] = true
			p.items = append(p.items, outItem{name: name, groupIdx: -1, aggIdx: -1})
			p.groupCols = append(p.groupCols, col) // reuse as projection list
		case sql.HasAggregate(item.Expr):
			call, ok := item.Expr.(*sql.Call)
			if !ok {
				return nil, fmt.Errorf("exec: aggregates must be top-level calls, got %s", item.Expr)
			}
			spec, err := e.compileAggregate(call)
			if err != nil {
				return nil, err
			}
			if spec.argCol != "" {
				access[spec.argCol] = true
			}
			p.aggs = append(p.aggs, spec)
			p.items = append(p.items, outItem{name: name, groupIdx: -1, aggIdx: len(p.aggs) - 1})
		default:
			// Must match a group expression.
			gi, err := p.matchGroup(e, stmt, item.Expr)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, outItem{name: name, groupIdx: gi, aggIdx: -1})
		}
	}

	// Multi-column group-by: combine into one composite expression,
	// materialized as an additional virtual column (Section 2.5 footnote:
	// "multiple group-by fields are combined into one expression which is
	// materialized in the datastore").
	if !p.rowScan && len(p.groupCols) > 1 {
		p.composite = "composite(" + strings.Join(p.groupCols, "\x1f") + ")"
		if e.store.Column(p.composite) == nil {
			if err := e.materializeComposite(p.composite, p.groupCols); err != nil {
				return nil, err
			}
		}
		access[p.composite] = true
	}

	for col := range access {
		p.accessCols = append(p.accessCols, col)
	}
	return p, nil
}

// resolveGroupExpr maps a GROUP BY expression, which may be an alias of a
// select item, back to the underlying expression.
func (e *Engine) resolveGroupExpr(stmt *sql.SelectStmt, g sql.Expr) (sql.Expr, error) {
	if id, ok := g.(*sql.Ident); ok {
		for _, item := range stmt.Items {
			if item.Alias == id.Name && !sql.HasAggregate(item.Expr) {
				return item.Expr, nil
			}
		}
	}
	return g, nil
}

// matchGroup finds which group expression a select item corresponds to.
func (p *plan) matchGroup(e *Engine, stmt *sql.SelectStmt, x sql.Expr) (int, error) {
	col, err := e.materializeOperand(x)
	if err != nil {
		return 0, err
	}
	for i, g := range p.groupCols {
		if g == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: %s is neither aggregated nor grouped", x)
}

// compileAggregate validates an aggregate call and materializes its
// argument column.
func (e *Engine) compileAggregate(call *sql.Call) (aggSpec, error) {
	name := strings.ToLower(call.Name)
	var fn aggFn
	switch name {
	case "count":
		fn = aggCount
		if call.Distinct {
			fn = aggCountDistinct
		}
	case "sum":
		fn = aggSum
	case "min":
		fn = aggMin
	case "max":
		fn = aggMax
	case "avg":
		fn = aggAvg
	default:
		return aggSpec{}, fmt.Errorf("exec: unknown aggregate %q", call.Name)
	}
	if call.Star {
		if fn != aggCount {
			return aggSpec{}, fmt.Errorf("exec: %s(*) is not supported", call.Name)
		}
		return aggSpec{fn: aggCount}, nil
	}
	if len(call.Args) != 1 {
		return aggSpec{}, fmt.Errorf("exec: %s expects one argument", call.Name)
	}
	col, err := e.materializeOperand(call.Args[0])
	if err != nil {
		return aggSpec{}, err
	}
	kind := e.store.Column(col).Kind
	if kind == value.KindString && (fn == aggSum || fn == aggAvg) {
		return aggSpec{}, fmt.Errorf("exec: %s over string column %q", call.Name, col)
	}
	return aggSpec{fn: fn, argCol: col}, nil
}

// materializeComposite builds the combined group-by column: per row, the
// group columns' global-ids joined into one string key. Using ids (not
// values) keeps the composite compact and order-preserving per column.
func (e *Engine) materializeComposite(name string, cols []string) error {
	colRefs := make([]*colstore.Column, len(cols))
	for i, cn := range cols {
		colRefs[i] = e.store.Column(cn)
	}
	vals := make([]value.Value, e.store.NumRows())
	err := forEachChunk(e.store.NumChunks(), e.parallelism(), nil, func(_, ci int) error {
		base := e.store.Bounds[ci]
		rows := e.store.ChunkRows(ci)
		buf := make([]byte, 0, 9*len(cols))
		for r := 0; r < rows; r++ {
			buf = buf[:0]
			for j, c := range colRefs {
				if j > 0 {
					buf = append(buf, 0x1f)
				}
				buf = appendHex32(buf, c.GlobalIDAt(ci, r))
			}
			vals[base+r] = value.String(string(buf))
		}
		return nil
	})
	if err != nil {
		return err
	}
	_, err = e.store.AddVirtualColumn(name, value.KindString, vals)
	return err
}

// appendHex32 appends v as exactly 8 lowercase hex digits. Fixed width keeps
// lexicographic order == id order; hand-rolled because a fmt.Fprintf("%08x")
// per row per group column dominated multi-column group-by planning.
func appendHex32(dst []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, digits[(v>>uint(shift))&0xf])
	}
	return dst
}
