// Package exec is PowerDrill's query engine: it evaluates the SQL subset
// over a colstore.Store using the mechanisms of Sections 2.4, 2.5 and 5 —
// chunk skipping via chunk-dictionaries, dense counts-array group-by,
// materialized virtual fields, per-chunk result caching for fully active
// chunks, and approximate count distinct.
package exec

import (
	"fmt"
	"strings"
	"sync"

	"powerdrill/internal/cache"
	"powerdrill/internal/colstore"
	"powerdrill/internal/expr"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// Options configures an Engine.
type Options struct {
	// ResultCacheBytes bounds the per-chunk result cache; 0 disables it.
	ResultCacheBytes int64
	// CachePolicy selects the eviction policy: "lru", "2q" (default) or
	// "arc" — the Section 5 "Improved Cache Heuristics".
	CachePolicy string
	// SketchM is the m parameter of the count-distinct approximation
	// (default 2048, the paper's "couple of thousand").
	SketchM int
	// ExactDistinct computes COUNT(DISTINCT x) exactly (for accuracy
	// comparisons); costly for high-cardinality fields.
	ExactDistinct bool
	// DisableSkipping scans every chunk regardless of the restriction —
	// the ablation that isolates Section 2.2's contribution.
	DisableSkipping bool
}

// Engine executes queries against one store (one shard).
type Engine struct {
	store *colstore.Store
	opts  Options

	mu          sync.Mutex
	resultCache cache.Cache

	stats Stats
}

// Stats accumulates execution counters across queries — the quantities the
// paper reports for production (Section 6).
type Stats struct {
	Queries       int64
	ChunksTotal   int64
	ChunksSkipped int64
	ChunksCached  int64
	ChunksScanned int64
	RowsTotal     int64
	RowsSkipped   int64
	RowsCached    int64
	RowsScanned   int64
	// CellsCovered counts rows × accessed columns over the whole store —
	// the paper's "cells" a hypothetical full scan would process.
	CellsCovered int64
	// CellsScanned counts rows × accessed columns actually scanned.
	CellsScanned int64
}

// QueryStats are the per-query counters.
type QueryStats struct {
	ChunksTotal   int
	ChunksSkipped int
	ChunksCached  int
	ChunksScanned int
	RowsScanned   int64
	RowsCached    int64
	RowsSkipped   int64
	CellsCovered  int64
	CellsScanned  int64
}

// Result is a finished query result.
type Result struct {
	Columns []string
	Rows    [][]value.Value
	Stats   QueryStats
}

// New creates an engine over a store.
func New(store *colstore.Store, opts Options) *Engine {
	if opts.SketchM <= 0 {
		opts.SketchM = 2048
	}
	e := &Engine{store: store, opts: opts}
	if opts.ResultCacheBytes > 0 {
		switch opts.CachePolicy {
		case "lru":
			e.resultCache = cache.NewLRU(opts.ResultCacheBytes)
		case "arc":
			e.resultCache = cache.NewARC(opts.ResultCacheBytes)
		default:
			e.resultCache = cache.NewTwoQ(opts.ResultCacheBytes)
		}
	}
	return e
}

// Store returns the engine's store.
func (e *Engine) Store() *colstore.Store { return e.store }

// Stats returns the cumulative counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// CacheStats returns the result cache's counters; ok is false when the
// cache is disabled.
func (e *Engine) CacheStats() (cache.Stats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.resultCache == nil {
		return cache.Stats{}, false
	}
	return e.resultCache.Stats(), true
}

// Query parses and runs a SQL query.
func (e *Engine) Query(src string) (*Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(stmt)
}

// Run executes a parsed statement.
func (e *Engine) Run(stmt *sql.SelectStmt) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, err := e.plan(stmt)
	if err != nil {
		return nil, err
	}
	var (
		res *Result
		qs  QueryStats
	)
	if p.rowScan {
		res, qs, err = e.executeRowScan(p)
		if err != nil {
			return nil, err
		}
	} else {
		var partials map[uint32][]accCell
		partials, qs, err = e.executeChunks(p)
		if err != nil {
			return nil, err
		}
		res, err = e.finalize(p, partials)
		if err != nil {
			return nil, err
		}
	}
	res.Stats = qs
	e.stats.Queries++
	e.stats.ChunksTotal += int64(qs.ChunksTotal)
	e.stats.ChunksSkipped += int64(qs.ChunksSkipped)
	e.stats.ChunksCached += int64(qs.ChunksCached)
	e.stats.ChunksScanned += int64(qs.ChunksScanned)
	e.stats.RowsTotal += int64(e.store.NumRows())
	e.stats.RowsScanned += qs.RowsScanned
	e.stats.RowsCached += qs.RowsCached
	e.stats.RowsSkipped += qs.RowsSkipped
	e.stats.CellsCovered += qs.CellsCovered
	e.stats.CellsScanned += qs.CellsScanned
	return res, nil
}

// storeRow adapts a (chunk, row) position to the expr.Row interface.
type storeRow struct {
	e     *Engine
	chunk int
	row   int
}

// ColumnValue implements expr.Row.
func (r *storeRow) ColumnValue(name string) value.Value {
	col := r.e.store.Column(name)
	if col == nil {
		return value.Value{}
	}
	return col.ValueAt(r.chunk, r.row)
}

// evalPredRow, exprLiteral and exprColumns keep restrict.go free of direct
// expr imports.
func evalPredRow(e sql.Expr, row expr.Row) (bool, error) { return expr.EvalPred(e, row) }

func exprLiteral(e sql.Expr) (value.Value, bool) { return expr.IsLiteral(e) }

func exprColumns(e sql.Expr) []string { return expr.Columns(e) }

// materializeOperand resolves an expression used as a restriction or
// group-by operand to a column name, materializing a virtual field when it
// is not a plain column reference (Section 5: expressions are computed once
// and stored in the datastore; restrictions on them can then skip chunks).
func (e *Engine) materializeOperand(x sql.Expr) (string, error) {
	if id, ok := x.(*sql.Ident); ok {
		if e.store.Column(id.Name) == nil {
			return "", fmt.Errorf("exec: unknown column %q", id.Name)
		}
		return id.Name, nil
	}
	key := x.String()
	if e.store.Column(key) != nil {
		return key, nil // already materialized by an earlier query
	}
	kind, err := expr.InferKind(x, func(col string) (value.Kind, bool) {
		c := e.store.Column(col)
		if c == nil {
			return value.KindInvalid, false
		}
		return c.Kind, true
	})
	if err != nil {
		return "", err
	}
	vals := make([]value.Value, 0, e.store.NumRows())
	row := &storeRow{e: e}
	for ci := 0; ci < e.store.NumChunks(); ci++ {
		row.chunk = ci
		for r := 0; r < e.store.ChunkRows(ci); r++ {
			row.row = r
			v, err := expr.Eval(x, row)
			if err != nil {
				return "", err
			}
			vals = append(vals, v)
		}
	}
	if _, err := e.store.AddVirtualColumn(key, kind, vals); err != nil {
		return "", err
	}
	return key, nil
}

// aggFn enumerates aggregate functions.
type aggFn uint8

const (
	aggCount aggFn = iota
	aggSum
	aggMin
	aggMax
	aggAvg
	aggCountDistinct
)

// aggSpec is one aggregate in the select list.
type aggSpec struct {
	fn     aggFn
	argCol string // "" for COUNT(*)
}

// signature identifies the aggregate for result caching.
func (a aggSpec) signature() string {
	return fmt.Sprintf("%d(%s)", a.fn, a.argCol)
}

// outItem maps a select item to its source: a group key or an aggregate.
type outItem struct {
	name     string // output column name (alias or canonical expr)
	groupIdx int    // ≥0: index into group exprs
	aggIdx   int    // ≥0: index into aggSpecs
}

// plan is a compiled query.
type plan struct {
	stmt      *sql.SelectStmt
	where     *restriction // nil when no WHERE clause
	groupCols []string     // materialized group-by columns (one per group expr)
	groupKind []value.Kind
	composite string // composite column when len(groupCols) > 1
	aggs      []aggSpec
	items     []outItem
	rowScan   bool // no aggregates and no GROUP BY: plain projection
	// accessCols are the physical/virtual columns the query touches (for
	// cell accounting).
	accessCols []string
}

// plan compiles a statement.
func (e *Engine) plan(stmt *sql.SelectStmt) (*plan, error) {
	if stmt.From == "" {
		return nil, fmt.Errorf("exec: missing FROM")
	}
	p := &plan{stmt: stmt}
	access := map[string]bool{}

	// WHERE.
	if stmt.Where != nil {
		w, err := e.compileRestriction(stmt.Where)
		if err != nil {
			return nil, err
		}
		p.where = w
		w.columnsOf(access)
	}

	// GROUP BY columns (materialized).
	for _, g := range stmt.GroupBy {
		name, err := e.resolveGroupExpr(stmt, g)
		if err != nil {
			return nil, err
		}
		col, err := e.materializeOperand(name)
		if err != nil {
			return nil, err
		}
		p.groupCols = append(p.groupCols, col)
		p.groupKind = append(p.groupKind, e.store.Column(col).Kind)
		access[col] = true
	}

	// Select items: group keys and aggregates.
	hasAgg := false
	for _, item := range stmt.Items {
		if sql.HasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	p.rowScan = !hasAgg && len(stmt.GroupBy) == 0
	if p.rowScan && stmt.Having != nil {
		return nil, fmt.Errorf("exec: HAVING requires GROUP BY or aggregates")
	}

	for _, item := range stmt.Items {
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
		}
		switch {
		case p.rowScan:
			col, err := e.materializeOperand(item.Expr)
			if err != nil {
				return nil, err
			}
			access[col] = true
			p.items = append(p.items, outItem{name: name, groupIdx: -1, aggIdx: -1})
			p.groupCols = append(p.groupCols, col) // reuse as projection list
		case sql.HasAggregate(item.Expr):
			call, ok := item.Expr.(*sql.Call)
			if !ok {
				return nil, fmt.Errorf("exec: aggregates must be top-level calls, got %s", item.Expr)
			}
			spec, err := e.compileAggregate(call)
			if err != nil {
				return nil, err
			}
			if spec.argCol != "" {
				access[spec.argCol] = true
			}
			p.aggs = append(p.aggs, spec)
			p.items = append(p.items, outItem{name: name, groupIdx: -1, aggIdx: len(p.aggs) - 1})
		default:
			// Must match a group expression.
			gi, err := p.matchGroup(e, stmt, item.Expr)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, outItem{name: name, groupIdx: gi, aggIdx: -1})
		}
	}

	// Multi-column group-by: combine into one composite expression,
	// materialized as an additional virtual column (Section 2.5 footnote:
	// "multiple group-by fields are combined into one expression which is
	// materialized in the datastore").
	if !p.rowScan && len(p.groupCols) > 1 {
		p.composite = "composite(" + strings.Join(p.groupCols, "\x1f") + ")"
		if e.store.Column(p.composite) == nil {
			if err := e.materializeComposite(p.composite, p.groupCols); err != nil {
				return nil, err
			}
		}
		access[p.composite] = true
	}

	for col := range access {
		p.accessCols = append(p.accessCols, col)
	}
	return p, nil
}

// resolveGroupExpr maps a GROUP BY expression, which may be an alias of a
// select item, back to the underlying expression.
func (e *Engine) resolveGroupExpr(stmt *sql.SelectStmt, g sql.Expr) (sql.Expr, error) {
	if id, ok := g.(*sql.Ident); ok {
		for _, item := range stmt.Items {
			if item.Alias == id.Name && !sql.HasAggregate(item.Expr) {
				return item.Expr, nil
			}
		}
	}
	return g, nil
}

// matchGroup finds which group expression a select item corresponds to.
func (p *plan) matchGroup(e *Engine, stmt *sql.SelectStmt, x sql.Expr) (int, error) {
	col, err := e.materializeOperand(x)
	if err != nil {
		return 0, err
	}
	for i, g := range p.groupCols {
		if g == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: %s is neither aggregated nor grouped", x)
}

// compileAggregate validates an aggregate call and materializes its
// argument column.
func (e *Engine) compileAggregate(call *sql.Call) (aggSpec, error) {
	name := strings.ToLower(call.Name)
	var fn aggFn
	switch name {
	case "count":
		fn = aggCount
		if call.Distinct {
			fn = aggCountDistinct
		}
	case "sum":
		fn = aggSum
	case "min":
		fn = aggMin
	case "max":
		fn = aggMax
	case "avg":
		fn = aggAvg
	default:
		return aggSpec{}, fmt.Errorf("exec: unknown aggregate %q", call.Name)
	}
	if call.Star {
		if fn != aggCount {
			return aggSpec{}, fmt.Errorf("exec: %s(*) is not supported", call.Name)
		}
		return aggSpec{fn: aggCount}, nil
	}
	if len(call.Args) != 1 {
		return aggSpec{}, fmt.Errorf("exec: %s expects one argument", call.Name)
	}
	col, err := e.materializeOperand(call.Args[0])
	if err != nil {
		return aggSpec{}, err
	}
	kind := e.store.Column(col).Kind
	if kind == value.KindString && (fn == aggSum || fn == aggAvg) {
		return aggSpec{}, fmt.Errorf("exec: %s over string column %q", call.Name, col)
	}
	return aggSpec{fn: fn, argCol: col}, nil
}

// materializeComposite builds the combined group-by column: per row, the
// group columns' global-ids joined into one string key. Using ids (not
// values) keeps the composite compact and order-preserving per column.
func (e *Engine) materializeComposite(name string, cols []string) error {
	vals := make([]value.Value, 0, e.store.NumRows())
	var b strings.Builder
	for ci := 0; ci < e.store.NumChunks(); ci++ {
		rows := e.store.ChunkRows(ci)
		for r := 0; r < rows; r++ {
			b.Reset()
			for j, cn := range cols {
				if j > 0 {
					b.WriteByte(0x1f)
				}
				gid := e.store.Column(cn).GlobalIDAt(ci, r)
				// Fixed-width hex keeps lexicographic order == id order.
				fmt.Fprintf(&b, "%08x", gid)
			}
			vals = append(vals, value.String(b.String()))
		}
	}
	_, err := e.store.AddVirtualColumn(name, value.KindString, vals)
	return err
}
