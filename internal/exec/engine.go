package exec

// This file holds the Engine, its options and statistics, and the query
// planner; see doc.go for the package overview and query lifecycle.

import (
	"fmt"
	"sync"

	"powerdrill/internal/cache"
	"powerdrill/internal/colstore"
	"powerdrill/internal/expr"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// Options configures an Engine.
type Options struct {
	// ResultCacheBytes bounds the per-chunk result cache; 0 disables it.
	ResultCacheBytes int64
	// CachePolicy selects the eviction policy: "lru", "2q" (default) or
	// "arc" — the Section 5 "Improved Cache Heuristics".
	CachePolicy string
	// SketchM is the m parameter of the count-distinct approximation
	// (default 2048, the paper's "couple of thousand").
	SketchM int
	// ExactDistinct computes COUNT(DISTINCT x) exactly (for accuracy
	// comparisons); costly for high-cardinality fields.
	ExactDistinct bool
	// DisableSkipping scans every chunk regardless of the restriction —
	// the ablation that isolates Section 2.2's contribution.
	DisableSkipping bool
	// DisableKernels forces the row-at-a-time scalar scan path instead of
	// the vectorized kernels. The scalar path is the reference
	// implementation the differential fuzzer compares the kernels against
	// (and an ablation isolating the kernels' contribution).
	DisableKernels bool
	// Parallelism is the number of workers a single query fans its chunk
	// scans out over; 0 (the default) means runtime.GOMAXPROCS(0), and 1
	// recovers the fully sequential engine.
	Parallelism int
	// Gate is the cross-query admission controller: concurrent queries
	// share its worker budget instead of each spawning Parallelism
	// goroutines. nil gives the engine its own gate sized to Parallelism;
	// pass one Gate to several engines (cluster leaves) to share a
	// process-wide budget.
	Gate *Gate
}

// Engine executes queries against one store (one shard). See the package
// comment for the concurrency model.
type Engine struct {
	store *colstore.Store
	opts  Options

	// planMu serializes query planning — the only phase that may mutate the
	// store (materializing virtual columns). Execution runs outside it.
	planMu sync.Mutex

	// resultCache is internally synchronized (cache.Synchronized); workers
	// and concurrent queries share it directly.
	resultCache cache.Cache

	// gate admits scan workers across concurrent queries (see Gate).
	gate *Gate

	statsMu sync.Mutex
	stats   Stats
}

// Stats accumulates execution counters across queries — the quantities the
// paper reports for production (Section 6).
type Stats struct {
	Queries       int64
	ChunksTotal   int64
	ChunksSkipped int64
	ChunksCached  int64
	ChunksScanned int64
	RowsTotal     int64
	RowsSkipped   int64
	RowsCached    int64
	RowsScanned   int64
	// CellsCovered counts rows × accessed columns over the whole store —
	// the paper's "cells" a hypothetical full scan would process.
	CellsCovered int64
	// CellsScanned counts rows × accessed columns actually scanned.
	CellsScanned int64
	// ActiveChunks counts chunks the pre-scan residency analysis marked
	// possibly active (all chunks when nothing could be pruned).
	ActiveChunks int64
	// SkippedChunks counts chunks the residency analysis pruned before any
	// of their data was loaded — on a lazy store these never touch disk.
	SkippedChunks int64
	// ColdLoads counts columns loaded from disk because they were not
	// resident when a query touched them (lazy stores only).
	ColdLoads int64
	// ColdChunkLoads counts individual (column, chunk) entries loaded from
	// disk (chunk-granular lazy stores only).
	ColdChunkLoads int64
	// ColdDictLoads counts global dictionaries loaded from disk
	// (chunk-granular lazy stores only).
	ColdDictLoads int64
	// ColdBytesLoaded sums the resident bytes of those cold loads.
	ColdBytesLoaded int64
	// DiskBytesRead sums their on-disk (compressed) bytes — the quantity
	// Figure 5's latency model charges.
	DiskBytesRead int64
	// ChecksumVerified counts cold loads whose CRC32C checked out;
	// ChecksumFailed counts loads rejected for a mismatch (v5 stores with
	// verification on). A nonzero failure count means disk corruption was
	// caught before it could reach a query result.
	ChecksumVerified int64
	ChecksumFailed   int64
	// CacheSkippedChunks counts chunks the cache-aware residency pass
	// answered straight from the result cache — never pinned, loaded, or
	// charged to the byte budget.
	CacheSkippedChunks int64
	// ReadRuns counts the coalesced byte-run reads cold chunk prefetches
	// issued (one ReadAt per run).
	ReadRuns int64
	// CoalescedReads counts the reads run coalescing saved (a run of m
	// contiguous cold chunks is one read, saving m−1).
	CoalescedReads int64
	// BloomSkippedChunks counts chunks pruned only because a per-chunk
	// bloom filter proved an equality restriction's ids absent — the
	// manifest spans alone could not have skipped them.
	BloomSkippedChunks int64
	// KernelChunks counts chunks aggregated by the vectorized kernels;
	// ScalarChunks counts chunks that ran the row-at-a-time reference path
	// (Options.DisableKernels).
	KernelChunks int64
	ScalarChunks int64
}

// QueryStats are the per-query counters.
type QueryStats struct {
	ChunksTotal   int
	ChunksSkipped int
	ChunksCached  int
	ChunksScanned int
	RowsScanned   int64
	RowsCached    int64
	RowsSkipped   int64
	CellsCovered  int64
	CellsScanned  int64
	// ActiveChunks counts chunks the pre-scan residency analysis marked
	// possibly active for this query (ChunksTotal when nothing could be
	// pruned); only these are loaded — and charged to the memory budget —
	// on a chunk-granular lazy store.
	ActiveChunks int
	// SkippedChunks counts chunks the residency analysis pruned from
	// manifest spans alone, before any of their data was loaded. They are
	// also included in ChunksSkipped, which additionally counts chunks the
	// precise per-chunk-dictionary classification skipped.
	SkippedChunks int
	// ColdLoads counts columns this query had to load from disk (zero on a
	// warm repeat — the Section 5 "only a fraction of the data needs to be
	// in memory" accounting). A column counts once however many of its
	// chunks came from disk.
	ColdLoads int
	// ColdChunkLoads counts the individual (column, chunk) entries this
	// query cold-loaded (chunk-granular lazy stores only).
	ColdChunkLoads int
	// ColdDictLoads counts the global dictionaries this query cold-loaded
	// (chunk-granular lazy stores only).
	ColdDictLoads int
	// ColdBytesLoaded sums the resident bytes of those cold loads.
	ColdBytesLoaded int64
	// DiskBytesRead sums their on-disk (compressed) bytes.
	DiskBytesRead int64
	// ChecksumVerified / ChecksumFailed count this query's cold loads
	// that passed / failed CRC verification (v5 stores).
	ChecksumVerified int
	ChecksumFailed   int
	// CacheSkippedChunks counts chunks answered by the cache-aware
	// residency pass from the result cache alone: they are in ChunksCached
	// too, but additionally were never pinned or loaded.
	CacheSkippedChunks int
	// ReadRuns counts the coalesced byte-run reads this query's cold chunk
	// prefetches issued (one ReadAt per run; zero on stores without exact
	// chunk reads).
	ReadRuns int
	// CoalescedReads counts the reads this query's run coalescing saved
	// (a run of m contiguous cold chunks is one read, saving m−1).
	CoalescedReads int
	// BloomSkippedChunks counts chunks this query pruned only because a
	// per-chunk bloom filter proved an equality restriction's ids absent —
	// the manifest spans alone could not have skipped them. They are also
	// counted in SkippedChunks (and ChunksSkipped).
	BloomSkippedChunks int
	// KernelChunks counts chunks this query aggregated through the
	// vectorized kernels; ScalarChunks counts chunks that ran the
	// row-at-a-time reference path instead (Options.DisableKernels).
	KernelChunks int
	ScalarChunks int
	// RowsTotal counts the rows the answer SHOULD span: the store's row
	// count for a single engine or leaf partial, the sum over every shard
	// (answering or not) after a cluster merge. RowsCovered counts the
	// rows of the servers that actually contributed. The two are equal
	// unless a shard was abandoned (dead replicas, expired deadline) and
	// the cluster degraded to a partial answer.
	RowsTotal   int64
	RowsCovered int64
	// ShardsMissing counts shards absent from a merged answer.
	ShardsMissing int
}

// Result is a finished query result.
type Result struct {
	Columns []string
	Rows    [][]value.Value
	Stats   QueryStats
	// Coverage is the fraction of rows the answer covers
	// (Stats.RowsCovered / Stats.RowsTotal): 1 for a complete answer,
	// lower when the serving tree degraded to a partial result because a
	// shard's replicas were all dead or out of deadline (the paper's UI
	// reports exactly this fraction next to every answer).
	Coverage float64
}

// New creates an engine over a store.
func New(store *colstore.Store, opts Options) *Engine {
	if opts.SketchM <= 0 {
		opts.SketchM = 2048
	}
	e := &Engine{store: store, opts: opts}
	if opts.ResultCacheBytes > 0 {
		var inner cache.Cache
		switch opts.CachePolicy {
		case "lru":
			inner = cache.NewLRU(opts.ResultCacheBytes)
		case "arc":
			inner = cache.NewARC(opts.ResultCacheBytes)
		default:
			inner = cache.NewTwoQ(opts.ResultCacheBytes)
		}
		e.resultCache = cache.NewSynchronized(inner)
	}
	e.gate = opts.Gate
	if e.gate == nil {
		e.gate = NewGate(e.parallelism())
	}
	return e
}

// Store returns the engine's store.
func (e *Engine) Store() *colstore.Store { return e.store }

// Gate returns the engine's admission gate, so satellite engines (ingest
// generations, cluster leaves) can share one process-wide worker budget
// instead of multiplying it.
func (e *Engine) Gate() *Gate { return e.gate }

// Stats returns the cumulative counters.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// CacheStats returns the result cache's counters; ok is false when the
// cache is disabled.
func (e *Engine) CacheStats() (cache.Stats, bool) {
	if e.resultCache == nil {
		return cache.Stats{}, false
	}
	return e.resultCache.Stats(), true
}

// Query parses and runs a SQL query.
func (e *Engine) Query(src string) (*Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(stmt)
}

// Run executes a parsed statement. Planning serializes on planMu; the scan
// phase runs lock-free over the immutable store, fanned out over the
// workers the admission gate grants.
//
// On lazy stores everything the query touches is pinned from first touch
// (during planning) through the final dictionary lookups, so the scan never
// races an eviction; the pins drop when the result is assembled. On
// chunk-granular stores the residency analysis runs first, so only the
// chunks the restriction can possibly match are ever loaded or pinned.
func (e *Engine) Run(stmt *sql.SelectStmt) (*Result, error) {
	ps := e.store.NewPinSet()
	defer ps.Release()
	rsd := e.analyzeResidency(stmt, ps)
	e.cacheResidency(stmt, rsd)
	e.prefetchColumns(stmt, ps, rsd.pinSet())
	e.planMu.Lock()
	p, err := e.plan(stmt, ps, rsd)
	e.planMu.Unlock()
	if err != nil {
		return nil, err
	}
	var (
		res *Result
		qs  QueryStats
	)
	if p.rowScan {
		res, qs, err = e.executeRowScan(p)
		if err != nil {
			return nil, err
		}
	} else {
		var partials map[uint32][]accCell
		partials, qs, err = e.executeChunks(p)
		if err != nil {
			return nil, err
		}
		res, err = e.finalize(p, partials)
		if err != nil {
			return nil, err
		}
	}
	qs.BloomSkippedChunks = rsd.bloomSkipped
	qs.ColdLoads = ps.ColdLoads
	qs.ColdChunkLoads = ps.ColdChunkLoads
	qs.ColdDictLoads = ps.ColdDictLoads
	qs.ColdBytesLoaded = ps.ColdBytesLoaded
	qs.DiskBytesRead = ps.DiskBytesRead
	qs.ChecksumVerified = int(ps.ChecksumVerified)
	qs.ChecksumFailed = int(ps.ChecksumFailed)
	qs.ReadRuns = ps.ReadRuns
	qs.CoalescedReads = ps.CoalescedReads
	qs.RowsTotal = int64(e.store.NumRows())
	qs.RowsCovered = qs.RowsTotal
	res.Stats = qs
	res.Coverage = 1
	e.recordStats(qs)
	return res, nil
}

// recordStats folds one query's merged counters into the cumulative stats.
func (e *Engine) recordStats(qs QueryStats) {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stats.Queries++
	e.stats.ChunksTotal += int64(qs.ChunksTotal)
	e.stats.ChunksSkipped += int64(qs.ChunksSkipped)
	e.stats.ChunksCached += int64(qs.ChunksCached)
	e.stats.ChunksScanned += int64(qs.ChunksScanned)
	e.stats.RowsTotal += int64(e.store.NumRows())
	e.stats.RowsScanned += qs.RowsScanned
	e.stats.RowsCached += qs.RowsCached
	e.stats.RowsSkipped += qs.RowsSkipped
	e.stats.CellsCovered += qs.CellsCovered
	e.stats.CellsScanned += qs.CellsScanned
	e.stats.ActiveChunks += int64(qs.ActiveChunks)
	e.stats.SkippedChunks += int64(qs.SkippedChunks)
	e.stats.ColdLoads += int64(qs.ColdLoads)
	e.stats.ColdChunkLoads += int64(qs.ColdChunkLoads)
	e.stats.ColdDictLoads += int64(qs.ColdDictLoads)
	e.stats.ColdBytesLoaded += qs.ColdBytesLoaded
	e.stats.DiskBytesRead += qs.DiskBytesRead
	e.stats.ChecksumVerified += int64(qs.ChecksumVerified)
	e.stats.ChecksumFailed += int64(qs.ChecksumFailed)
	e.stats.CacheSkippedChunks += int64(qs.CacheSkippedChunks)
	e.stats.ReadRuns += int64(qs.ReadRuns)
	e.stats.CoalescedReads += int64(qs.CoalescedReads)
	e.stats.BloomSkippedChunks += int64(qs.BloomSkippedChunks)
	e.stats.KernelChunks += int64(qs.KernelChunks)
	e.stats.ScalarChunks += int64(qs.ScalarChunks)
}

// prefetchColumns pins what the statement will touch BEFORE planning takes
// planMu: cold loads are the slow part of a first-touch query on a lazy
// store, and doing them here lets concurrent queries load disjoint data in
// parallel instead of serializing their disk reads behind the plan lock
// (memmgr deduplicates concurrent loads of the same entry). Planning then
// finds everything warm. Unknown names are skipped — they either name a
// not-yet-materialized virtual column or fail later with a proper error.
//
// active is the residency analysis verdict: plain columns are pinned at
// chunk granularity, loading only the chunks the restriction can match.
// The one exception is the source columns of an expression that still
// needs materializing — materialization scans every row, so those are
// prefetched in full.
func (e *Engine) prefetchColumns(stmt *sql.SelectStmt, ps *colstore.PinSet, active []bool) {
	// pinOperand warms one operand-level expression: the unit
	// materializeOperand will resolve during planning.
	pinOperand := func(x sql.Expr) {
		if x == nil {
			return
		}
		if id, ok := x.(*sql.Ident); ok {
			if e.store.HasColumn(id.Name) {
				_, _ = ps.ColumnChunks(id.Name, active)
			}
			return
		}
		if key := x.String(); e.store.HasColumn(key) {
			// Already materialized. A registry-resident column needs no pin
			// (pass-through); one persisted in the virtual sidecar cold-loads
			// like any physical column, so warm its active chunks here,
			// outside the plan lock.
			_, _ = ps.ColumnChunks(key, active)
			return
		}
		// Fresh materialization ahead: it will read every row of the
		// sources, so pin them in full.
		for _, name := range exprColumns(x) {
			if e.store.HasColumn(name) {
				_, _ = ps.Column(name)
			}
		}
	}
	// pinRowPred warms a predicate that will be evaluated row by row: its
	// columns are only ever read inside active chunks.
	pinRowPred := func(x sql.Expr) {
		for _, name := range exprColumns(x) {
			if e.store.HasColumn(name) {
				_, _ = ps.ColumnChunks(name, active)
			}
		}
	}
	// pinPredicate walks a WHERE tree down to its comparison/IN operands.
	var pinPredicate func(x sql.Expr)
	pinPredicate = func(x sql.Expr) {
		switch n := x.(type) {
		case nil:
			return
		case *sql.Binary:
			switch n.Op {
			case sql.OpAnd, sql.OpOr:
				pinPredicate(n.L)
				pinPredicate(n.R)
				return
			default:
				// Only a column-vs-literal comparison materializes its
				// non-literal side; anything else compiles to a row
				// predicate and needs active chunks only.
				_, lLit := exprLiteral(n.L)
				_, rLit := exprLiteral(n.R)
				if lLit == rLit {
					pinRowPred(x)
					return
				}
				if !lLit {
					pinOperand(n.L)
				}
				if !rLit {
					pinOperand(n.R)
				}
				return
			}
		case *sql.Not:
			pinPredicate(n.X)
			return
		case *sql.In:
			// A non-literal list member turns the whole IN into a row
			// predicate; only an all-literal list materializes n.X.
			for _, item := range n.List {
				if _, ok := exprLiteral(item); !ok {
					pinRowPred(x)
					return
				}
			}
			pinOperand(n.X)
			return
		}
		pinRowPred(x)
	}
	for _, item := range stmt.Items {
		x := item.Expr
		if call, ok := x.(*sql.Call); ok && sql.HasAggregate(x) {
			for _, arg := range call.Args {
				pinOperand(arg)
			}
			continue
		}
		pinOperand(x)
	}
	pinPredicate(stmt.Where)
	for _, g := range stmt.GroupBy {
		if resolved, err := e.resolveGroupExpr(stmt, g); err == nil {
			pinOperand(resolved)
		}
	}
	for _, o := range stmt.OrderBy {
		pinOperand(o.Expr)
	}
	if stmt.Having != nil {
		for _, name := range exprColumns(stmt.Having) {
			if e.store.HasColumn(name) {
				_, _ = ps.ColumnChunks(name, active)
			}
		}
	}
}

// storeRow adapts a (chunk, row) position to the expr.Row interface. It is
// confined to one goroutine; cols caches name resolution so per-row
// evaluation skips the store's registry lock. When a plan is supplied, its
// pre-resolved column pointers are preferred (no memory-manager traffic on
// lazy stores).
type storeRow struct {
	e     *Engine
	p     *plan
	chunk int
	row   int
	cols  map[string]*colstore.Column
}

func newStoreRow(e *Engine, p *plan, chunk int) *storeRow {
	return &storeRow{e: e, p: p, chunk: chunk, cols: make(map[string]*colstore.Column, 4)}
}

// ColumnValue implements expr.Row.
func (r *storeRow) ColumnValue(name string) value.Value {
	col, ok := r.cols[name]
	if !ok {
		if r.p != nil {
			col = r.p.cols[name]
		}
		if col == nil {
			col = r.e.store.Column(name)
		}
		r.cols[name] = col
	}
	if col == nil {
		return value.Value{}
	}
	return col.ValueAt(r.chunk, r.row)
}

// evalPredRow, exprLiteral and exprColumns keep restrict.go free of direct
// expr imports.
func evalPredRow(e sql.Expr, row expr.Row) (bool, error) { return expr.EvalPred(e, row) }

func exprLiteral(e sql.Expr) (value.Value, bool) { return expr.IsLiteral(e) }

func exprColumns(e sql.Expr) []string { return expr.Columns(e) }

// materializeOperand resolves an expression used as a restriction or
// group-by operand to a column name, materializing a virtual field when it
// is not a plain column reference (Section 5: expressions are computed once
// and stored in the datastore; restrictions on them can then skip chunks).
// Columns it resolves are pinned into ps at the residency analysis's chunk
// granularity (active; nil = all chunks), and the source columns of a
// fresh materialization are pinned in full for the duration of its
// chunk-parallel, every-row scan.
func (e *Engine) materializeOperand(x sql.Expr, ps *colstore.PinSet, active []bool) (string, error) {
	if id, ok := x.(*sql.Ident); ok {
		if !e.store.HasColumn(id.Name) {
			return "", fmt.Errorf("exec: unknown column %q", id.Name)
		}
		if _, err := ps.ColumnChunks(id.Name, active); err != nil {
			return "", err
		}
		return id.Name, nil
	}
	key := x.String()
	if e.store.HasColumn(key) {
		// Already materialized by an earlier query.
		if _, err := ps.ColumnChunks(key, active); err != nil {
			return "", err
		}
		return key, nil
	}
	// Pin the expression's source columns: the materialization scan below
	// reads them row by row, and pinning keeps those reads resident on lazy
	// stores. The resolved pointers also seed each worker's row cache so
	// the per-chunk loop never goes back through the memory manager.
	srcCols := make(map[string]*colstore.Column, 4)
	for _, name := range exprColumns(x) {
		if c, cerr := ps.Column(name); cerr == nil {
			srcCols[name] = c
		}
	}
	kind, err := expr.InferKind(x, func(col string) (value.Kind, bool) {
		c := srcCols[col]
		if c == nil {
			return value.KindInvalid, false
		}
		return c.Kind, true
	})
	if err != nil {
		return "", err
	}
	// Chunk-parallel evaluation: each worker fills its chunk's slice of
	// vals (disjoint regions, so no locks). The per-row interface dispatch
	// of expr.Eval makes this the costliest part of materialization. The
	// fan-out goes through the admission gate like every other chunk
	// sweep, so a burst of first-touch queries cannot multiply worker
	// goroutines past the shared budget.
	workers := e.gate.AcquireUpTo(e.parallelism())
	vals := make([]value.Value, e.store.NumRows())
	err = forEachChunk(e.store.NumChunks(), workers, nil, func(_, ci int) error {
		row := newStoreRow(e, nil, ci)
		for k, v := range srcCols {
			row.cols[k] = v
		}
		base := e.store.Bounds[ci]
		rows := e.store.ChunkRows(ci)
		for r := 0; r < rows; r++ {
			row.row = r
			v, err := expr.Eval(x, row)
			if err != nil {
				return err
			}
			vals[base+r] = v
		}
		return nil
	})
	e.gate.Release(workers)
	if err != nil {
		return "", err
	}
	// On a chunk-granular lazy store the materialization is persisted into
	// the store's virtual sidecar and its pieces enter the memory budget
	// (evicting cold chunks to make room), pinned into ps like any physical
	// column; resident stores keep the in-registry path.
	if _, err := e.store.AddVirtualColumnPinned(ps, key, kind, vals); err != nil {
		return "", err
	}
	return key, nil
}

// aggFn enumerates aggregate functions.
type aggFn uint8

const (
	aggCount aggFn = iota
	aggSum
	aggMin
	aggMax
	aggAvg
	aggCountDistinct
)

// aggSpec is one aggregate in the select list.
type aggSpec struct {
	fn     aggFn
	argCol string // "" for COUNT(*)
}

// signature identifies the aggregate for result caching.
func (a aggSpec) signature() string {
	return fmt.Sprintf("%d(%s)", a.fn, a.argCol)
}

// outItem maps a select item to its source: a group key or an aggregate.
type outItem struct {
	name     string // output column name (alias or canonical expr)
	groupIdx int    // ≥0: index into group exprs
	aggIdx   int    // ≥0: index into aggSpecs
}

// plan is a compiled query.
type plan struct {
	stmt      *sql.SelectStmt
	where     *restriction // nil when no WHERE clause
	groupCols []string     // materialized group-by columns (one per group expr)
	groupKind []value.Kind
	composite string // composite column when len(groupCols) > 1
	aggs      []aggSpec
	items     []outItem
	rowScan   bool // no aggregates and no GROUP BY: plain projection
	// accessCols are the physical/virtual columns the query touches (for
	// cell accounting).
	accessCols []string
	// cols maps every accessed column to its resolved (pinned) pointer, so
	// the scan and finalize phases never go back through the store registry
	// or the memory manager. On a chunk-granular store these are
	// query-private views whose Chunks are populated only at active
	// indices. Read-only after planning.
	cols map[string]*colstore.Column
	// active flags the chunks the residency analysis kept (nil = all);
	// the scan skips pruned chunks without touching their data, which on a
	// chunk-granular store was never loaded in the first place.
	active []bool
	// activeCount is the number of active chunks.
	activeCount int
	// pinActive is the subset of active the query actually pins: chunks
	// answered by the cache-aware residency pass are active but never
	// pinned. nil = same as active.
	pinActive []bool
	// cachedParts holds the result-cache partials the cache-aware pass
	// retrieved, by chunk index; the scan returns them without touching
	// (never-loaded) chunk data. Read-only during execution.
	cachedParts map[int]*partial
	// cacheSig is the chunk-independent part of the result-cache key,
	// derived from the compiled plan.
	cacheSig string
}

// pins returns the flags of the chunks planning must pin (nil = all
// active).
func (p *plan) pins() []bool {
	if p.pinActive != nil {
		return p.pinActive
	}
	return p.active
}

// col returns the plan's resolved pointer for an accessed column, falling
// back to the store for names outside the access set.
func (p *plan) col(e *Engine, name string) *colstore.Column {
	if c := p.cols[name]; c != nil {
		return c
	}
	return e.store.Column(name)
}

// plan compiles a statement. Everything the query touches is pinned into
// ps as it is resolved — at the chunk granularity rsd allows — so on lazy
// stores the scan phase only ever sees resident data.
func (e *Engine) plan(stmt *sql.SelectStmt, ps *colstore.PinSet, rsd *residency) (*plan, error) {
	if stmt.From == "" {
		return nil, fmt.Errorf("exec: missing FROM")
	}
	p := &plan{
		stmt:        stmt,
		active:      rsd.activeSet(),
		activeCount: rsd.count,
		pinActive:   rsd.pinActive,
		cachedParts: rsd.cached,
	}
	access := map[string]bool{}

	// WHERE.
	if stmt.Where != nil {
		w, err := e.compileRestriction(stmt.Where, ps, p.pins())
		if err != nil {
			return nil, err
		}
		p.where = w
		w.columnsOf(access)
	}

	// GROUP BY columns (materialized).
	for _, g := range stmt.GroupBy {
		name, err := e.resolveGroupExpr(stmt, g)
		if err != nil {
			return nil, err
		}
		col, err := e.materializeOperand(name, ps, p.pins())
		if err != nil {
			return nil, err
		}
		gc, err := ps.ColumnChunks(col, p.pins())
		if err != nil {
			return nil, err
		}
		p.groupCols = append(p.groupCols, col)
		p.groupKind = append(p.groupKind, gc.Kind)
		access[col] = true
	}

	// Select items: group keys and aggregates.
	hasAgg := false
	for _, item := range stmt.Items {
		if sql.HasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	p.rowScan = !hasAgg && len(stmt.GroupBy) == 0
	if p.rowScan && stmt.Having != nil {
		return nil, fmt.Errorf("exec: HAVING requires GROUP BY or aggregates")
	}

	for _, item := range stmt.Items {
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
		}
		switch {
		case p.rowScan:
			col, err := e.materializeOperand(item.Expr, ps, p.pins())
			if err != nil {
				return nil, err
			}
			access[col] = true
			p.items = append(p.items, outItem{name: name, groupIdx: -1, aggIdx: -1})
			p.groupCols = append(p.groupCols, col) // reuse as projection list
		case sql.HasAggregate(item.Expr):
			call, ok := item.Expr.(*sql.Call)
			if !ok {
				return nil, fmt.Errorf("exec: aggregates must be top-level calls, got %s", item.Expr)
			}
			spec, err := e.compileAggregate(call, ps, p.pins())
			if err != nil {
				return nil, err
			}
			if spec.argCol != "" {
				access[spec.argCol] = true
			}
			p.aggs = append(p.aggs, spec)
			p.items = append(p.items, outItem{name: name, groupIdx: -1, aggIdx: len(p.aggs) - 1})
		default:
			// Must match a group expression.
			gi, err := p.matchGroup(e, stmt, item.Expr, ps)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, outItem{name: name, groupIdx: gi, aggIdx: -1})
		}
	}

	// Multi-column group-by: combine into one composite expression,
	// materialized as an additional virtual column (Section 2.5 footnote:
	// "multiple group-by fields are combined into one expression which is
	// materialized in the datastore").
	if !p.rowScan && len(p.groupCols) > 1 {
		p.composite = compositeName(p.groupCols)
		if !e.store.HasColumn(p.composite) {
			if err := e.materializeComposite(p.composite, p.groupCols, ps); err != nil {
				return nil, err
			}
		}
		access[p.composite] = true
	}

	// The compiled cache signature. The cache-aware residency pass probed
	// the result cache under a syntactic prediction of this value before
	// planning; if the prediction missed (it mirrors the naming rules
	// above, so it should not), drop the cached partials and re-widen the
	// pin set — the sweep below then pins the previously skipped chunks.
	p.cacheSig = cacheSigOf(p.groupColumn(), p.aggs)
	if len(p.cachedParts) > 0 && p.cacheSig != rsd.sig {
		p.cachedParts = nil
		p.pinActive = nil
	}

	p.cols = make(map[string]*colstore.Column, len(access))
	for col := range access {
		p.accessCols = append(p.accessCols, col)
		// Pin everything the scan will touch and record the resolved
		// pointers. Most columns are already held (pinning is idempotent
		// per set); this sweep catches stragglers such as columns
		// referenced only inside row-level predicates. Unknown names are
		// left to fail at evaluation time, as before.
		if e.store.HasColumn(col) {
			c, err := ps.ColumnChunks(col, p.pins())
			if err != nil {
				return nil, err
			}
			p.cols[col] = c
		}
	}
	return p, nil
}

// resolveGroupExpr maps a GROUP BY expression, which may be an alias of a
// select item, back to the underlying expression.
func (e *Engine) resolveGroupExpr(stmt *sql.SelectStmt, g sql.Expr) (sql.Expr, error) {
	if id, ok := g.(*sql.Ident); ok {
		for _, item := range stmt.Items {
			if item.Alias == id.Name && !sql.HasAggregate(item.Expr) {
				return item.Expr, nil
			}
		}
	}
	return g, nil
}

// matchGroup finds which group expression a select item corresponds to.
func (p *plan) matchGroup(e *Engine, stmt *sql.SelectStmt, x sql.Expr, ps *colstore.PinSet) (int, error) {
	col, err := e.materializeOperand(x, ps, p.pins())
	if err != nil {
		return 0, err
	}
	for i, g := range p.groupCols {
		if g == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: %s is neither aggregated nor grouped", x)
}

// compileAggregate validates an aggregate call and materializes its
// argument column.
func (e *Engine) compileAggregate(call *sql.Call, ps *colstore.PinSet, active []bool) (aggSpec, error) {
	fn, ok := aggFnFor(call.Name, call.Distinct)
	if !ok {
		return aggSpec{}, fmt.Errorf("exec: unknown aggregate %q", call.Name)
	}
	if call.Star {
		if fn != aggCount {
			return aggSpec{}, fmt.Errorf("exec: %s(*) is not supported", call.Name)
		}
		return aggSpec{fn: aggCount}, nil
	}
	if len(call.Args) != 1 {
		return aggSpec{}, fmt.Errorf("exec: %s expects one argument", call.Name)
	}
	col, err := e.materializeOperand(call.Args[0], ps, active)
	if err != nil {
		return aggSpec{}, err
	}
	argCol, err := ps.ColumnChunks(col, active)
	if err != nil {
		return aggSpec{}, err
	}
	kind := argCol.Kind
	if kind == value.KindString && (fn == aggSum || fn == aggAvg) {
		return aggSpec{}, fmt.Errorf("exec: %s over string column %q", call.Name, col)
	}
	return aggSpec{fn: fn, argCol: col}, nil
}

// materializeComposite builds the combined group-by column: per row, the
// group columns' global-ids joined into one string key. Using ids (not
// values) keeps the composite compact and order-preserving per column.
func (e *Engine) materializeComposite(name string, cols []string, ps *colstore.PinSet) error {
	colRefs := make([]*colstore.Column, len(cols))
	for i, cn := range cols {
		c, err := ps.Column(cn)
		if err != nil {
			return err
		}
		colRefs[i] = c
	}
	// Gated fan-out, like materializeOperand.
	workers := e.gate.AcquireUpTo(e.parallelism())
	defer e.gate.Release(workers)
	vals := make([]value.Value, e.store.NumRows())
	err := forEachChunk(e.store.NumChunks(), workers, nil, func(_, ci int) error {
		base := e.store.Bounds[ci]
		rows := e.store.ChunkRows(ci)
		buf := make([]byte, 0, 9*len(cols))
		for r := 0; r < rows; r++ {
			buf = buf[:0]
			for j, c := range colRefs {
				if j > 0 {
					buf = append(buf, 0x1f)
				}
				buf = appendHex32(buf, c.GlobalIDAt(ci, r))
			}
			vals[base+r] = value.String(string(buf))
		}
		return nil
	})
	if err != nil {
		return err
	}
	_, err = e.store.AddVirtualColumnPinned(ps, name, value.KindString, vals)
	return err
}

// appendHex32 appends v as exactly 8 lowercase hex digits. Fixed width keeps
// lexicographic order == id order; hand-rolled because a fmt.Fprintf("%08x")
// per row per group column dominated multi-column group-by planning.
func appendHex32(dst []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, digits[(v>>uint(shift))&0xf])
	}
	return dst
}
