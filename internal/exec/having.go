package exec

import (
	"fmt"

	"powerdrill/internal/expr"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// HAVING support. The paper's execution tree (Section 4) evaluates WHERE
// at the leaves and "the root executes any having statements": by the time
// a HAVING predicate runs, every aggregate has been fully merged, so the
// clause filters finished result rows. Sub-expressions that match an
// output column (by alias or canonical form, e.g. COUNT(*) or c) are
// rewritten to references into the result row, then evaluated with the
// ordinary predicate machinery.

// applyHaving filters res.Rows by the statement's HAVING clause.
func applyHaving(stmt *sql.SelectStmt, res *Result) error {
	if stmt.Having == nil {
		return nil
	}
	names := outputNames(stmt)
	rewritten, err := rewriteHaving(stmt.Having, names)
	if err != nil {
		return err
	}
	cols := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		cols[c] = i
	}
	kept := res.Rows[:0]
	for _, r := range res.Rows {
		ok, err := expr.EvalPred(rewritten, resultRow{cols: cols, row: r})
		if err != nil {
			return fmt.Errorf("exec: HAVING: %w", err)
		}
		if ok {
			kept = append(kept, r)
		}
	}
	res.Rows = kept
	return nil
}

// outputNames maps each select item's alias and canonical expression form
// to its output column name.
func outputNames(stmt *sql.SelectStmt) map[string]string {
	names := map[string]string{}
	for _, item := range stmt.Items {
		out := item.Alias
		if out == "" {
			out = item.Expr.String()
		}
		names[item.Expr.String()] = out
		if item.Alias != "" {
			names[item.Alias] = out
		}
	}
	return names
}

// rewriteHaving substitutes sub-expressions that match an output column
// with references to it; remaining aggregate calls are errors (an
// aggregate in HAVING must appear in the select list, since the engine
// does not re-aggregate at the root).
func rewriteHaving(e sql.Expr, names map[string]string) (sql.Expr, error) {
	if out, ok := names[e.String()]; ok {
		return &sql.Ident{Name: out}, nil
	}
	switch n := e.(type) {
	case *sql.Binary:
		l, err := rewriteHaving(n.L, names)
		if err != nil {
			return nil, err
		}
		r, err := rewriteHaving(n.R, names)
		if err != nil {
			return nil, err
		}
		return &sql.Binary{Op: n.Op, L: l, R: r}, nil
	case *sql.Not:
		x, err := rewriteHaving(n.X, names)
		if err != nil {
			return nil, err
		}
		return &sql.Not{X: x}, nil
	case *sql.In:
		x, err := rewriteHaving(n.X, names)
		if err != nil {
			return nil, err
		}
		list := make([]sql.Expr, len(n.List))
		for i, item := range n.List {
			li, err := rewriteHaving(item, names)
			if err != nil {
				return nil, err
			}
			list[i] = li
		}
		return &sql.In{X: x, List: list, Negated: n.Negated}, nil
	case *sql.Call:
		if n.IsAggregate() {
			return nil, fmt.Errorf("exec: HAVING aggregate %s must appear in the select list", e)
		}
		return e, nil
	default:
		return e, nil
	}
}

// resultRow adapts one output row to expr.Row.
type resultRow struct {
	cols map[string]int
	row  []value.Value
}

// ColumnValue implements expr.Row.
func (r resultRow) ColumnValue(name string) value.Value {
	if i, ok := r.cols[name]; ok {
		return r.row[i]
	}
	return value.Value{}
}
