package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"powerdrill/internal/table"
)

// SessionSpec configures a synthetic drill-down UI session.
type SessionSpec struct {
	// Seed makes the session deterministic.
	Seed int64
	// Clicks is the number of mouse clicks (restriction changes).
	Clicks int
	// QueriesPerClick is the number of charts the UI refreshes per click
	// (the paper: "a user triggers about 20 SQL queries with a single
	// mouse click").
	QueriesPerClick int
}

func (s *SessionSpec) withDefaults() SessionSpec {
	out := *s
	if out.Clicks <= 0 {
		out.Clicks = 10
	}
	if out.QueriesPerClick <= 0 {
		out.QueriesPerClick = 20
	}
	return out
}

// Click is one mouse click: the queries the UI issues for it.
type Click struct {
	// Queries holds the SQL text of each chart refresh.
	Queries []string
	// Restriction is the WHERE clause shared by the click's queries
	// (empty for the initial unrestricted view).
	Restriction string
}

// groupable lists the fields charts group by, with the aggregate used.
var chartSpecs = []struct{ field, agg string }{
	{"country", "COUNT(*)"},
	{"table_name", "COUNT(*)"},
	{"user", "COUNT(*)"},
	{"date(timestamp)", "COUNT(*)"},
	{"country", "SUM(latency)"},
	{"date(timestamp)", "SUM(latency)"},
	{"user", "SUM(latency)"},
	{"country", "AVG(latency)"},
	{"table_name", "MAX(latency)"},
	{"date(timestamp)", "MIN(latency)"},
}

// DrillDownSession synthesizes a user session over tbl: each click narrows
// the restriction by one more conjunct (country, then user, then
// table-name prefix picked from real data), exactly the "conjunctions of IN
// statements" interaction pattern the paper's skipping relies on.
func DrillDownSession(tbl *table.Table, spec SessionSpec) []Click {
	s := spec.withDefaults()
	r := rand.New(rand.NewSource(s.Seed))

	countryCol := tbl.Column("country")
	userCol := tbl.Column("user")
	nameCol := tbl.Column("table_name")
	n := tbl.NumRows()

	sample := func(col []string, k int) []string {
		seen := map[string]bool{}
		var out []string
		for attempts := 0; len(out) < k && attempts < 20*k; attempts++ {
			v := col[r.Intn(n)]
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}

	var conjuncts []string
	clicks := make([]Click, 0, s.Clicks)
	for c := 0; c < s.Clicks; c++ {
		// Every click past the first narrows the restriction.
		switch c % 4 {
		case 1:
			conjuncts = append(conjuncts, inList("country", sample(countryCol.Strs, 1+r.Intn(2))))
		case 2:
			conjuncts = append(conjuncts, inList("user", sample(userCol.Strs, 1)))
		case 3:
			conjuncts = append(conjuncts, inList("table_name", sample(nameCol.Strs, 1+r.Intn(3))))
		case 0:
			if c > 0 {
				// Occasionally the user resets and starts a new drill.
				conjuncts = nil
			}
		}
		where := strings.Join(conjuncts, " AND ")
		click := Click{Restriction: where}
		for q := 0; q < s.QueriesPerClick; q++ {
			spec := chartSpecs[q%len(chartSpecs)]
			var b strings.Builder
			fmt.Fprintf(&b, "SELECT %s, %s AS v FROM data", spec.field, spec.agg)
			if where != "" {
				fmt.Fprintf(&b, " WHERE %s", where)
			}
			fmt.Fprintf(&b, " GROUP BY %s ORDER BY v DESC LIMIT 10;", spec.field)
			click.Queries = append(click.Queries, b.String())
		}
		clicks = append(clicks, click)
	}
	return clicks
}

// inList renders `field IN ("a", "b")`.
func inList(field string, vals []string) string {
	quoted := make([]string, len(vals))
	for i, v := range vals {
		quoted[i] = `"` + v + `"`
	}
	return fmt.Sprintf("%s IN (%s)", field, strings.Join(quoted, ", "))
}
