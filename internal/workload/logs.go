// Package workload generates the datasets and query streams of the paper's
// evaluation. The paper uses PowerDrill's own query logs — 5 million rows
// with the fields timestamp, table_name, latency and country — as "realistic
// input data"; this package synthesizes a table with the same schema and the
// same cardinality profile (Section 2.5):
//
//   - country: 25 distinct values, heavily skewed (office locations);
//   - table_name: "several 100K" distinct values with long shared prefixes
//     and date suffixes ("for which table-names usually include the date");
//   - timestamp: mostly increasing over the log period (the "implicit
//     clustering" Moerkotte's aggregates rely on);
//   - latency: a long-tailed distribution with many distinct values.
//
// It also generates the drill-down query sessions of the production
// workload (Section 6): conjunctions of IN restrictions that users build by
// clicking, 20 group-by queries per click.
package workload

import (
	"fmt"
	"math/rand"

	"powerdrill/internal/table"
)

// LogsSpec configures the synthetic query-log table.
type LogsSpec struct {
	// Rows is the number of rows to generate (the paper uses 5M).
	Rows int
	// Seed makes generation deterministic.
	Seed int64
	// Countries is the number of distinct countries (default 25).
	Countries int
	// TableNames is the number of distinct table names (default Rows/25,
	// matching "several 100K" at 5M rows).
	TableNames int
	// Days is the time span of the log (default 365).
	Days int
	// Users is the number of distinct user names (default Rows/5000+1).
	Users int
}

func (s *LogsSpec) withDefaults() LogsSpec {
	out := *s
	if out.Rows <= 0 {
		out.Rows = 100_000
	}
	if out.Countries <= 0 {
		out.Countries = 25
	}
	if out.TableNames <= 0 {
		out.TableNames = out.Rows / 25
		if out.TableNames < 100 {
			out.TableNames = 100
		}
	}
	if out.Days <= 0 {
		out.Days = 365
	}
	if out.Users <= 0 {
		out.Users = out.Rows/5000 + 1
	}
	return out
}

// countryPool is the fixed universe of office countries.
var countryPool = []string{
	"us", "de", "gb", "jp", "fr", "ch", "ie", "in", "br", "au",
	"ca", "nl", "se", "es", "it", "pl", "ru", "kr", "cn", "sg",
	"dk", "fi", "no", "be", "at",
}

// datasetFamilies are prefixes for generated table names; long shared
// prefixes are what the trie dictionary exploits.
var datasetFamilies = []string{
	"logs.powerdrill.query_events_",
	"logs.powerdrill.ui_actions_",
	"logs.websearch.sessions_daily_",
	"logs.websearch.click_through_",
	"ads.revenue.critical_alerts_",
	"ads.revenue.by_customer_daily_",
	"spam.analysis.candidate_hosts_",
	"production.monitoring.rollouts_",
	"customer.requests.queue_state_",
	"bigtable.exports.usage_stats_",
}

// epoch2011 is 2011-01-01T00:00:00Z in Unix microseconds; the paper's
// production numbers cover the last three months of 2011.
const epoch2011 = 1293840000 * 1_000_000

const microsPerDay = 24 * 3600 * 1_000_000

// QueryLogs generates the synthetic PowerDrill query-log table.
func QueryLogs(spec LogsSpec) *table.Table {
	s := spec.withDefaults()
	r := rand.New(rand.NewSource(s.Seed))

	// Build the table-name pool: family prefix + date + shard suffix.
	names := make([]string, s.TableNames)
	for i := range names {
		fam := datasetFamilies[r.Intn(len(datasetFamilies))]
		day := r.Intn(s.Days)
		names[i] = fmt.Sprintf("%s2011%02d%02d.%05d", fam, day/30%12+1, day%28+1, i)
	}
	// Zipf-ish popularity for names and users: rank k drawn ∝ 1/(k+1).
	nameZipf := rand.NewZipf(r, 1.2, 1, uint64(len(names)-1))

	users := make([]string, s.Users)
	for i := range users {
		users[i] = fmt.Sprintf("user%04d", i)
	}
	userZipf := rand.NewZipf(r, 1.3, 1, uint64(len(users)-1))

	countries := countryPool[:s.Countries]
	// Skewed country distribution: a few offices issue most queries.
	countryWeights := make([]float64, len(countries))
	total := 0.0
	for i := range countryWeights {
		countryWeights[i] = 1.0 / float64(i+1)
		total += countryWeights[i]
	}

	ts := make([]int64, s.Rows)
	tn := make([]string, s.Rows)
	lat := make([]int64, s.Rows)
	co := make([]string, s.Rows)
	us := make([]string, s.Rows)

	for i := 0; i < s.Rows; i++ {
		// Timestamps increase row over row with jitter: logs are appended
		// over time, giving the "implicit clustering" of dates.
		day := i * s.Days / s.Rows
		ts[i] = epoch2011 + int64(day)*microsPerDay + int64(r.Int63n(microsPerDay))
		tn[i] = names[nameZipf.Uint64()]
		// Long-tailed latency in milliseconds: most queries fast, some
		// crossing into minutes.
		base := r.ExpFloat64() * 900
		if r.Intn(50) == 0 {
			base *= 20
		}
		lat[i] = int64(base) + 5
		// Weighted country pick.
		x := r.Float64() * total
		idx := 0
		for x > countryWeights[idx] {
			x -= countryWeights[idx]
			idx++
		}
		co[i] = countries[idx]
		us[i] = users[userZipf.Uint64()]
	}

	t := table.New("query_logs")
	t.AddInt64Column("timestamp", ts)
	t.AddStringColumn("table_name", tn)
	t.AddInt64Column("latency", lat)
	t.AddStringColumn("country", co)
	t.AddStringColumn("user", us)
	return t
}

// PaperQueries returns the three SQL queries of the basic experiments
// (Section 2.5), verbatim up to whitespace.
func PaperQueries() []string {
	return []string{
		// Query 1: top 10 countries.
		`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`,
		// Query 2: number of queries and overall latency per day.
		`SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10;`,
		// Query 3: top 10 table names.
		`SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;`,
	}
}
