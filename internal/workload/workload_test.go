package workload

import (
	"strings"
	"testing"
)

func TestQueryLogsShape(t *testing.T) {
	tbl := QueryLogs(LogsSpec{Rows: 50_000, Seed: 1})
	if tbl.NumRows() != 50_000 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	for _, name := range []string{"timestamp", "table_name", "latency", "country", "user"} {
		if tbl.Column(name) == nil {
			t.Fatalf("missing column %q", name)
		}
	}

	distinct := func(vals []string) int {
		set := map[string]bool{}
		for _, v := range vals {
			set[v] = true
		}
		return len(set)
	}
	// country: few distinct values (≤25), the paper's low-cardinality case.
	if d := distinct(tbl.Column("country").Strs); d < 5 || d > 25 {
		t.Errorf("country distinct = %d, want 5..25", d)
	}
	// table_name: high cardinality, the paper's hard case.
	if d := distinct(tbl.Column("table_name").Strs); d < 500 {
		t.Errorf("table_name distinct = %d, want ≥500", d)
	}
	// latency: many distinct numeric values.
	lat := tbl.Column("latency").Ints
	latSet := map[int64]bool{}
	for _, v := range lat {
		latSet[v] = true
		if v < 0 {
			t.Fatalf("negative latency %d", v)
		}
	}
	if len(latSet) < 100 {
		t.Errorf("latency distinct = %d, want ≥100", len(latSet))
	}
}

func TestQueryLogsTimestampsMostlyIncreasing(t *testing.T) {
	tbl := QueryLogs(LogsSpec{Rows: 10_000, Seed: 2, Days: 100})
	ts := tbl.Column("timestamp").Ints
	// Day buckets must be non-decreasing — the "implicit clustering".
	for i := 1; i < len(ts); i++ {
		dayPrev := (ts[i-1] - epoch2011) / microsPerDay
		dayCur := (ts[i] - epoch2011) / microsPerDay
		if dayCur < dayPrev-1 {
			t.Fatalf("timestamps jump backwards at row %d: day %d -> %d", i, dayPrev, dayCur)
		}
	}
}

func TestQueryLogsDeterministic(t *testing.T) {
	a := QueryLogs(LogsSpec{Rows: 1000, Seed: 7})
	b := QueryLogs(LogsSpec{Rows: 1000, Seed: 7})
	for i := 0; i < 1000; i++ {
		if a.Column("table_name").Strs[i] != b.Column("table_name").Strs[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := QueryLogs(LogsSpec{Rows: 1000, Seed: 8})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Column("table_name").Strs[i] == c.Column("table_name").Strs[i] {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical data")
	}
}

func TestQueryLogsCountrySkew(t *testing.T) {
	tbl := QueryLogs(LogsSpec{Rows: 50_000, Seed: 3})
	counts := map[string]int{}
	for _, c := range tbl.Column("country").Strs {
		counts[c]++
	}
	// The top country should dominate the tail, as office traffic does.
	if counts["us"] < counts["at"]*2 {
		t.Errorf("country distribution not skewed: us=%d at=%d", counts["us"], counts["at"])
	}
}

func TestPaperQueries(t *testing.T) {
	qs := PaperQueries()
	if len(qs) != 3 {
		t.Fatalf("got %d queries", len(qs))
	}
	if !strings.Contains(qs[0], "country") || !strings.Contains(qs[1], "date(timestamp)") ||
		!strings.Contains(qs[2], "table_name") {
		t.Error("paper queries do not match Section 2.5")
	}
}

func TestDrillDownSession(t *testing.T) {
	tbl := QueryLogs(LogsSpec{Rows: 20_000, Seed: 4})
	clicks := DrillDownSession(tbl, SessionSpec{Seed: 5, Clicks: 8, QueriesPerClick: 20})
	if len(clicks) != 8 {
		t.Fatalf("got %d clicks", len(clicks))
	}
	for i, c := range clicks {
		if len(c.Queries) != 20 {
			t.Fatalf("click %d has %d queries", i, len(c.Queries))
		}
		for _, q := range c.Queries {
			if !strings.HasPrefix(q, "SELECT ") || !strings.Contains(q, " GROUP BY ") {
				t.Fatalf("malformed query: %s", q)
			}
			if c.Restriction != "" && !strings.Contains(q, " WHERE ") {
				t.Fatalf("restricted click lost WHERE: %s", q)
			}
		}
	}
	// Drilling must actually add restrictions as the session proceeds.
	var restricted int
	for _, c := range clicks {
		if c.Restriction != "" {
			restricted++
		}
	}
	if restricted < 4 {
		t.Errorf("only %d/8 clicks restricted", restricted)
	}
	// Restrictions are conjunctions of IN lists, the paper's pattern.
	for _, c := range clicks {
		if c.Restriction == "" {
			continue
		}
		for _, part := range strings.Split(c.Restriction, " AND ") {
			if !strings.Contains(part, " IN (") {
				t.Fatalf("conjunct %q is not an IN restriction", part)
			}
		}
	}
}

func TestDrillDownDeterministic(t *testing.T) {
	tbl := QueryLogs(LogsSpec{Rows: 5000, Seed: 6})
	a := DrillDownSession(tbl, SessionSpec{Seed: 9, Clicks: 4})
	b := DrillDownSession(tbl, SessionSpec{Seed: 9, Clicks: 4})
	for i := range a {
		for j := range a[i].Queries {
			if a[i].Queries[j] != b[i].Queries[j] {
				t.Fatal("same seed produced different sessions")
			}
		}
	}
}

func BenchmarkQueryLogs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		QueryLogs(LogsSpec{Rows: 100_000, Seed: int64(i)})
	}
}
