package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var f FS = OS{}
	path := filepath.Join(dir, "a.bin")
	if err := f.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := f.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	h, err := f.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := h.ReadAt(buf, 1); err != nil || string(buf) != "ell" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapRestores(t *testing.T) {
	inj := NewInjector(OS{}, InjectorOptions{WriteBudget: -1})
	restore := Swap(inj)
	if Current() != FS(inj) {
		t.Fatal("Swap did not install the injector")
	}
	restore()
	if _, ok := Current().(OS); !ok {
		t.Fatalf("restore did not reinstall the OS passthrough, got %T", Current())
	}
}

func TestInjectorCrashTearsFinalWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, InjectorOptions{WriteBudget: 10, SilentTearAt: -1})
	pathA := filepath.Join(dir, "a.bin")
	pathB := filepath.Join(dir, "b.bin")
	if err := inj.WriteFile(pathA, []byte("12345678"), 0o644); err != nil {
		t.Fatalf("first write within budget: %v", err)
	}
	// 2 units left: the next 5-byte write tears after 2 bytes and crashes.
	err := inj.WriteFile(pathB, []byte("abcde"), 0o644)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	got, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ab" {
		t.Fatalf("torn write left %q, want prefix \"ab\"", got)
	}
	// Everything after the crash fails.
	if _, err := inj.ReadFile(pathA); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if err := inj.Remove(pathA); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove after crash: %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() = false after budget exhaustion")
	}
}

func TestInjectorFileWriteCrash(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, InjectorOptions{WriteBudget: 4, SilentTearAt: -1})
	f, err := inj.OpenFile(filepath.Join(dir, "w.log"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if _, err := f.Write([]byte("cdef")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after crash must still release the fd: %v", err)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "w.log"))
	if string(got) != "abcd" {
		t.Fatalf("file = %q, want torn \"abcd\"", got)
	}
}

func TestInjectorSilentTear(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, InjectorOptions{WriteBudget: -1, SilentTearAt: 6})
	path := filepath.Join(dir, "t.bin")
	if err := inj.WriteFile(path, []byte("0123"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Cumulative offset 6 falls inside this write: it applies 2 of 4
	// bytes but reports success.
	if err := inj.WriteFile(path+"2", []byte("abcd"), 0o644); err != nil {
		t.Fatalf("silent tear must not error: %v", err)
	}
	got, _ := os.ReadFile(path + "2")
	if string(got) != "ab" {
		t.Fatalf("silently torn file = %q, want \"ab\"", got)
	}
	if inj.Crashed() {
		t.Fatal("silent tear must not crash the injector")
	}
}

func TestInjectorDropSyncs(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, InjectorOptions{WriteBudget: -1, DropSyncs: true, SilentTearAt: -1})
	f, err := inj.OpenFile(filepath.Join(dir, "s.log"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("dropped sync must report success: %v", err)
	}
	_ = f.Close()
	st := inj.Stats()
	if st.Syncs != 1 || st.SyncsDropped != 1 {
		t.Fatalf("stats = %+v, want 1 sync, 1 dropped", st)
	}
}

func TestInjectorFlipsReadBits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.bin")
	orig := bytes.Repeat([]byte{0x55}, 256)
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(OS{}, InjectorOptions{WriteBudget: -1, FlipReadBitProb: 1, Seed: 7, SilentTearAt: -1})
	got, err := inj.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("FlipReadBitProb=1 read returned unmodified bytes")
	}
	if inj.Stats().BitsFlipped == 0 {
		t.Fatal("BitsFlipped not counted")
	}
	// The file on disk is untouched — rot is injected on the read path.
	disk, _ := os.ReadFile(path)
	if !bytes.Equal(disk, orig) {
		t.Fatal("read-path flip must not modify the file")
	}
}
