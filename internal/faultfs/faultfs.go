// Package faultfs is the storage-layer sibling of cluster.Injector: a
// filesystem seam under the colstore and ingest write paths that can
// crash after a byte budget (tearing the final write), silently tear a
// write, drop fsyncs, or flip bits on reads. The default implementation
// is a direct passthrough to the os package; tests swap in an Injector
// to drive crash-recovery and corruption-detection properties.
//
// The crash model is a process kill at a random point in the stream of
// filesystem operations: every completed write survives, the operation
// that exhausts the budget applies only a prefix of its bytes (a torn
// write), and every subsequent operation fails with ErrCrashed — the
// "process" is dead until the test restores the real filesystem and
// reopens the store.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"sync/atomic"
)

// FS is the slice of filesystem surface the storage layers use. Method
// signatures mirror the os package so the passthrough is trivial.
type FS interface {
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	MkdirAll(path string, perm fs.FileMode) error
	Remove(name string) error
	RemoveAll(path string) error
	Rename(oldpath, newpath string) error
	Link(oldname, newname string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
}

// File is the open-file surface the storage layers use: sequential
// writes (WAL appends, column files), positioned reads (cold chunk
// loads), fsync, close.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Name() string
}

// OS is the passthrough implementation — the process default.
type OS struct{}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Link(oldname, newname string) error           { return os.Link(oldname, newname) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// current is the process-global filesystem the storage layers route
// through. A global (rather than an FS threaded through every API) keeps
// the seam invisible to production code paths; fault tests swap it for
// the duration of one scripted scenario and must not run in parallel
// with other disk-touching tests in the same process.
var current atomic.Pointer[fsBox]

type fsBox struct{ fs FS }

func init() { current.Store(&fsBox{fs: OS{}}) }

// Current returns the filesystem storage code should route through.
func Current() FS { return current.Load().fs }

// Swap installs f as the process filesystem and returns a function that
// restores the previous one. Intended for tests:
//
//	restore := faultfs.Swap(inj)
//	defer restore()
func Swap(f FS) (restore func()) {
	old := current.Swap(&fsBox{fs: f})
	return func() { current.Store(old) }
}
