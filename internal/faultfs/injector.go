package faultfs

import (
	"errors"
	"io/fs"
	"math/rand"
	"sync"
)

// ErrCrashed is returned by every operation after the injector's write
// budget is exhausted: the simulated process is dead and stays dead
// until the test restores the real filesystem.
var ErrCrashed = errors.New("faultfs: injected crash")

// InjectorOptions configures an Injector.
type InjectorOptions struct {
	// WriteBudget is the number of write units the filesystem accepts
	// before crashing: one unit per byte written plus one per metadata
	// mutation (remove, rename, link, mkdir, truncate). The write that
	// exhausts the budget applies only its affordable prefix — a torn
	// write — and every later operation returns ErrCrashed. Negative
	// means unlimited (no crash).
	WriteBudget int64
	// DropSyncs makes Sync report success without syncing — the
	// lying-disk failure mode. Counted in Stats.SyncsDropped.
	DropSyncs bool
	// SilentTearAt, when > 0, silently truncates the write whose byte
	// range covers this cumulative written-byte offset: the write
	// applies only the bytes before the offset but reports full
	// success. Models a latent torn write no error ever surfaced —
	// the case a scrub pass exists to find. Zero or negative disables.
	SilentTearAt int64
	// FlipReadBitProb is the per-read probability of flipping one
	// random bit in the returned buffer (bit rot on the read path).
	FlipReadBitProb float64
	// Seed seeds the bit-flip randomness.
	Seed int64
}

// InjectorStats counts what the injector did.
type InjectorStats struct {
	Writes       int64
	BytesWritten int64
	Syncs        int64
	SyncsDropped int64
	BitsFlipped  int64
	Crashed      bool
	// Units is the cumulative write units charged (bytes plus metadata
	// mutations). A dry run with an unlimited budget measures a
	// workload's total units; a crash test then picks a kill point
	// uniformly inside that range.
	Units int64
}

// Injector wraps a base FS with configurable faults. Safe for
// concurrent use.
type Injector struct {
	base FS

	mu      sync.Mutex
	budget  int64 // remaining write units; < 0 means unlimited
	crashed bool
	opts    InjectorOptions
	rng     *rand.Rand
	written int64 // cumulative payload bytes attempted (SilentTearAt offsets index this)
	stats   InjectorStats
}

// NewInjector wraps base (usually OS{}) with the configured faults.
func NewInjector(base FS, opts InjectorOptions) *Injector {
	if base == nil {
		base = OS{}
	}
	return &Injector{
		base:   base,
		budget: opts.WriteBudget,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.stats
	st.Crashed = in.crashed
	return st
}

// Crashed reports whether the write budget has been exhausted.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// consume charges n write units. It returns how many of them the budget
// affords; crossing zero flips the injector into the crashed state, and
// err is ErrCrashed both then and on every later call.
func (in *Injector) consume(n int64) (allowed int64, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, ErrCrashed
	}
	if in.budget < 0 || n <= in.budget {
		if in.budget >= 0 {
			in.budget -= n
		}
		in.stats.Units += n
		return n, nil
	}
	allowed = in.budget
	in.budget = 0
	in.crashed = true
	in.stats.Units += allowed
	return allowed, ErrCrashed
}

// tearLen applies SilentTearAt: for a payload of n bytes starting at
// cumulative offset in.written, it returns how many bytes to actually
// write and whether the caller should still report success.
func (in *Injector) tearLen(n int64) int64 {
	at := in.opts.SilentTearAt
	if at <= 0 || at >= in.written+n || at < in.written {
		return n
	}
	return at - in.written
}

// checkAlive fails reads and metadata queries after a crash.
func (in *Injector) checkAlive() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

// maybeFlip flips one random bit of buf with the configured probability.
func (in *Injector) maybeFlip(buf []byte) {
	if in.opts.FlipReadBitProb <= 0 || len(buf) == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.opts.FlipReadBitProb {
		return
	}
	bit := in.rng.Intn(len(buf) * 8)
	buf[bit/8] ^= 1 << (bit % 8)
	in.stats.BitsFlipped++
}

// meta charges one unit for a metadata mutation.
func (in *Injector) meta() error {
	_, err := in.consume(1)
	return err
}

func (in *Injector) Open(name string) (File, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	b, err := in.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	in.maybeFlip(b)
	return b, nil
}

func (in *Injector) WriteFile(name string, data []byte, perm fs.FileMode) error {
	n := int64(len(data))
	allowed, err := in.consume(n)
	if err != nil && allowed == 0 {
		return err
	}
	in.mu.Lock()
	tear := in.tearLen(allowed)
	in.written += n
	in.stats.Writes++
	in.stats.BytesWritten += tear
	in.mu.Unlock()
	if werr := in.base.WriteFile(name, data[:tear], perm); werr != nil {
		return werr
	}
	return err
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err := in.meta(); err != nil {
		return err
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) Remove(name string) error {
	if err := in.meta(); err != nil {
		return err
	}
	return in.base.Remove(name)
}

func (in *Injector) RemoveAll(path string) error {
	if err := in.meta(); err != nil {
		return err
	}
	return in.base.RemoveAll(path)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.meta(); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Link(oldname, newname string) error {
	if err := in.meta(); err != nil {
		return err
	}
	return in.base.Link(oldname, newname)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	return in.base.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	return in.base.Stat(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if err := in.meta(); err != nil {
		return err
	}
	return in.base.Truncate(name, size)
}

// injFile wraps an open file with the injector's faults.
type injFile struct {
	in *Injector
	f  File
}

func (f *injFile) Name() string { return f.f.Name() }

func (f *injFile) Write(b []byte) (int, error) {
	in := f.in
	n := int64(len(b))
	allowed, err := in.consume(n)
	in.mu.Lock()
	tear := in.tearLen(allowed)
	in.written += n
	in.stats.Writes++
	in.stats.BytesWritten += tear
	in.mu.Unlock()
	if tear > 0 {
		if wn, werr := f.f.Write(b[:tear]); werr != nil {
			return wn, werr
		}
	}
	if err != nil {
		return int(tear), err
	}
	// A silent tear reports full success — the caller must not learn
	// that bytes went missing; that is the scrub pass's job.
	return len(b), nil
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.in.checkAlive(); err != nil {
		return 0, err
	}
	n, err := f.f.ReadAt(p, off)
	if err == nil {
		f.in.maybeFlip(p[:n])
	}
	return n, err
}

func (f *injFile) Sync() error {
	in := f.in
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.stats.Syncs++
	drop := in.opts.DropSyncs
	if drop {
		in.stats.SyncsDropped++
	}
	in.mu.Unlock()
	if drop {
		return nil
	}
	return f.f.Sync()
}

// Close always reaches the base file so descriptors never leak, even
// after a crash.
func (f *injFile) Close() error { return f.f.Close() }
