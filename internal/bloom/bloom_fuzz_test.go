package bloom

import (
	"encoding/binary"
	"testing"
)

// FuzzBloomNoFalseNegatives is the fuzz form of the filter's one hard
// guarantee: any key that was added must test positive — across the byte,
// string and uint64 key forms, across filter geometries, and across a
// marshal/unmarshal round trip. (False positives are allowed; false
// negatives would silently drop chunks from query results.)
func FuzzBloomNoFalseNegatives(f *testing.F) {
	f.Add([]byte("hello world"), uint16(64), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(8), uint8(1))
	f.Add([]byte(""), uint16(1), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, mRaw uint16, kRaw uint8) {
		m := uint64(mRaw)%4096 + 1
		k := int(kRaw)%8 + 1
		fl := New(m, k)

		// Chop the input into keys: every 3-byte window is one key.
		var keys [][]byte
		for i := 0; i+3 <= len(data); i += 3 {
			keys = append(keys, data[i:i+3])
		}
		for i, key := range keys {
			switch i % 3 {
			case 0:
				fl.Add(key)
			case 1:
				fl.AddString(string(key))
			default:
				fl.AddUint64(binary.LittleEndian.Uint64(append(key[:len(key):len(key)], 0, 0, 0, 0, 0)))
			}
		}
		check := func(fl *Filter, ctx string) {
			for i, key := range keys {
				var ok bool
				switch i % 3 {
				case 0:
					ok = fl.Test(key)
				case 1:
					ok = fl.TestString(string(key))
				default:
					ok = fl.TestUint64(binary.LittleEndian.Uint64(append(key[:len(key):len(key)], 0, 0, 0, 0, 0)))
				}
				if !ok {
					t.Fatalf("%s: false negative for key %d (%x) with m=%d k=%d", ctx, i, key, m, k)
				}
			}
		}
		check(fl, "fresh filter")

		rt, err := Unmarshal(fl.Marshal())
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		check(rt, "after marshal round trip")
	})
}
