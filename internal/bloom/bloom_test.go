package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("table_%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.TestString(fmt.Sprintf("table_%d", i)) {
			t.Fatalf("false negative for table_%d", i)
		}
	}
}

func TestFalsePositiveRateRoughlyAsConfigured(t *testing.T) {
	const n = 5000
	f := NewWithEstimates(n, 0.01)
	for i := 0; i < n; i++ {
		f.AddString(fmt.Sprintf("present_%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.TestString(fmt.Sprintf("absent_%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false positive rate %.4f way above configured 0.01", rate)
	}
	if est := f.EstimatedFalsePositiveRate(); est <= 0 || est > 0.05 {
		t.Errorf("estimated fp rate %.4f out of range", est)
	}
}

func TestUint64Keys(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	for i := uint64(0); i < 100; i++ {
		f.AddUint64(i * 7919)
	}
	for i := uint64(0); i < 100; i++ {
		if !f.TestUint64(i * 7919) {
			t.Fatalf("false negative for %d", i*7919)
		}
	}
}

func TestByteAndStringKeysAgree(t *testing.T) {
	f := NewWithEstimates(10, 0.01)
	f.Add([]byte("chaussures"))
	if !f.TestString("chaussures") {
		t.Error("string probe missed byte-added key")
	}
	g := NewWithEstimates(10, 0.01)
	g.AddString("voyages sncf")
	if !g.Test([]byte("voyages sncf")) {
		t.Error("byte probe missed string-added key")
	}
}

func TestEmptyFilter(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	if f.TestString("anything") {
		t.Error("empty filter claims membership")
	}
	if f.EstimatedFalsePositiveRate() != 0 {
		t.Error("empty filter has nonzero fp estimate")
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ m, k int }{{0, 1}, {64, 0}, {64, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.m, tc.k)
				}
			}()
			New(uint64(tc.m), tc.k)
		}()
	}
}

func TestNewWithEstimatesDefensiveDefaults(t *testing.T) {
	// Degenerate inputs must still produce a usable filter.
	for _, tc := range []struct {
		n  int
		fp float64
	}{{0, 0.01}, {-5, 0.01}, {10, 0}, {10, 1.5}} {
		f := NewWithEstimates(tc.n, tc.fp)
		if f.Bits() == 0 || f.K() < 1 {
			t.Errorf("NewWithEstimates(%d, %g) produced unusable filter", tc.n, tc.fp)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewWithEstimates(500, 0.02)
	for i := 0; i < 500; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatalf("round trip changed parameters: %d/%d/%d vs %d/%d/%d",
			g.Bits(), g.K(), g.Count(), f.Bits(), f.K(), f.Count())
	}
	for i := 0; i < 500; i++ {
		if !g.TestString(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative after round trip: key-%d", i)
		}
	}
}

func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("Unmarshal(short) succeeded")
	}
	f := New(128, 3)
	raw := f.Marshal()
	if _, err := Unmarshal(raw[:len(raw)-1]); err == nil {
		t.Error("Unmarshal(truncated body) succeeded")
	}
}

func TestQuickNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []string) bool {
		fl := NewWithEstimates(len(keys)+1, 0.01)
		for _, k := range keys {
			fl.AddString(k)
		}
		for _, k := range keys {
			if !fl.TestString(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	f := New(1024, 4)
	if got := f.MemoryBytes(); got != 1024/8 {
		t.Errorf("MemoryBytes = %d, want %d", got, 1024/8)
	}
}

func BenchmarkAddString(b *testing.B) {
	f := NewWithEstimates(1<<20, 0.01)
	keys := make([]string, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = fmt.Sprintf("bench_table_%d_%d", i, r.Int63())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddString(keys[i%len(keys)])
	}
}

func BenchmarkTestString(b *testing.B) {
	f := NewWithEstimates(1<<20, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench_table_%d", i)
		f.AddString(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TestString(keys[i%len(keys)])
	}
}
