// Package bloom implements the Bloom filters PowerDrill keeps per
// (sub-)dictionary so that point lookups ("is this value present at all?")
// can usually be answered without loading the dictionary into memory
// (paper, Section 5, "Further Optimizing the Global-Dictionaries").
//
// The filter is a standard k-hash-function Bloom filter over a bit array.
// The two base hashes are derived from a single 64-bit FNV-1a pass using the
// Kirsch–Mitzenmacher construction h_i = h1 + i*h2, which preserves the
// asymptotic false-positive rate while hashing each key only once.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Filter is a Bloom filter. The zero value is unusable; create filters with
// New or NewWithEstimates.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // number of added keys (for stats only)
}

// New creates a filter with m bits (rounded up to a multiple of 64) and k
// hash functions. It panics if m == 0 or k == 0, which are programming
// errors rather than data errors.
func New(m uint64, k int) *Filter {
	if m == 0 || k <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters m=%d k=%d", m, k))
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithEstimates sizes a filter for n expected keys and a target
// false-positive probability fp using the standard optimal formulas
// m = -n ln(fp)/ln(2)^2 and k = m/n ln(2).
func NewWithEstimates(n int, fp float64) *Filter {
	if n <= 0 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// fnv64a hashes b with 64-bit FNV-1a.
func fnv64a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// indexes derives the k bit positions for a key hash.
func (f *Filter) setOrTest(h uint64, set bool) bool {
	h1 := h
	h2 := h>>33 | h<<31
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	all := true
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		word, mask := bit/64, uint64(1)<<(bit%64)
		if set {
			f.bits[word] |= mask
		} else if f.bits[word]&mask == 0 {
			all = false
			break
		}
	}
	return all
}

// Add inserts a byte key.
func (f *Filter) Add(key []byte) {
	f.setOrTest(fnv64a(key), true)
	f.n++
}

// AddString inserts a string key without allocating.
func (f *Filter) AddString(key string) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	f.setOrTest(h, true)
	f.n++
}

// AddUint64 inserts an integer key (used for numeric dictionaries).
func (f *Filter) AddUint64(key uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	f.Add(buf[:])
}

// Test reports whether key may have been added. False means definitely not
// present; true means present with probability 1-fp.
func (f *Filter) Test(key []byte) bool {
	return f.setOrTest(fnv64a(key), false)
}

// TestString is Test for string keys without allocating.
func (f *Filter) TestString(key string) bool {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return f.setOrTest(h, false)
}

// TestUint64 is Test for integer keys.
func (f *Filter) TestUint64(key uint64) bool {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	return f.Test(buf[:])
}

// Bits returns the number of bits in the filter.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the number of Add calls.
func (f *Filter) Count() int { return f.n }

// MemoryBytes returns the in-memory footprint of the bit array.
func (f *Filter) MemoryBytes() int64 { return int64(len(f.bits) * 8) }

// EstimatedFalsePositiveRate computes (1 - e^{-kn/m})^k for the current
// load, the classic Bloom filter false-positive estimate.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// Marshal serializes the filter (little-endian m, k, n, then the bit words).
func (f *Filter) Marshal() []byte {
	out := make([]byte, 24+len(f.bits)*8)
	binary.LittleEndian.PutUint64(out[0:], f.m)
	binary.LittleEndian.PutUint64(out[8:], uint64(f.k))
	binary.LittleEndian.PutUint64(out[16:], uint64(f.n))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[24+i*8:], w)
	}
	return out
}

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("bloom: truncated header (%d bytes)", len(data))
	}
	m := binary.LittleEndian.Uint64(data[0:])
	k := int(binary.LittleEndian.Uint64(data[8:]))
	n := int(binary.LittleEndian.Uint64(data[16:]))
	words := int(m / 64)
	if m%64 != 0 || k <= 0 || len(data) != 24+words*8 {
		return nil, fmt.Errorf("bloom: corrupt encoding (m=%d k=%d len=%d)", m, k, len(data))
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, n: n}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[24+i*8:])
	}
	return f, nil
}
