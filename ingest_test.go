package powerdrill

import (
	"fmt"
	"testing"
)

// ingestOptions are small-scale settings that force several seals.
func ingestOptions() Options {
	return Options{
		PartitionFields:          []string{"country", "table_name"},
		MaxChunkRows:             500,
		OptimizeElements:         true,
		Reorder:                  true,
		IngestSealRows:           600,
		IngestCompactMinSegments: 100, // manual compaction only
	}
}

// TestPublicAPIAppend drives the public streaming path end to end: build
// and save a base store, reopen it lazily, append the rest of the stream,
// and check every answer matches a one-shot Build of the full table —
// including after a compaction and a fresh Open (which must auto-attach
// the generations).
func TestPublicAPIAppend(t *testing.T) {
	const baseRows, fullRows = 2000, 4000
	full := GenerateQueryLogs(fullRows, 7)
	base := tableSlice(full, 0, baseRows)

	dir := t.TempDir()
	built, err := Build(base, ingestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	store, _, err := Open(dir, ingestOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Appending to a Build store must fail with a clear error.
	if err := built.Append(base); err == nil {
		t.Fatal("Append on an in-memory store must fail")
	}

	// Stream the second half in batches.
	for start := baseRows; start < fullRows; start += 250 {
		if err := store.Append(tableSlice(full, start, 250)); err != nil {
			t.Fatal(err)
		}
	}
	if store.NumRows() != fullRows {
		t.Fatalf("NumRows = %d, want %d", store.NumRows(), fullRows)
	}

	// Reference: one-shot import of the identical full table.
	oracle, err := Build(full, ingestOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY country;`,
		`SELECT table_name, MIN(latency) AS lo, MAX(latency) AS hi, COUNT(*) AS c FROM data GROUP BY table_name ORDER BY table_name;`,
		`SELECT country, COUNT(*) AS c FROM data WHERE latency > 500 GROUP BY country ORDER BY country;`,
		`SELECT user, latency FROM data WHERE country = "US" ORDER BY latency DESC, user LIMIT 25;`,
	}
	checkOracle := func(stage string) {
		t.Helper()
		for _, q := range queries {
			want, err := oracle.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := store.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
				t.Fatalf("%s: %s\ngot  %v\nwant %v", stage, q, got.Rows, want.Rows)
			}
			if got.Stats.RowsTotal != int64(fullRows) {
				t.Fatalf("%s: RowsTotal = %d, want %d", stage, got.Stats.RowsTotal, fullRows)
			}
		}
	}
	checkOracle("streamed")

	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	st, ok := store.IngestStats()
	if !ok || st.Segments < 2 || st.Seals < 2 {
		t.Fatalf("ingest stats = %+v ok=%v, want ≥2 sealed segments", st, ok)
	}
	cst, err := store.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Merged != st.Segments {
		t.Fatalf("compaction merged %d of %d segments", cst.Merged, st.Segments)
	}
	after, _ := store.IngestStats()
	if after.Segments != 1 {
		t.Fatalf("segments after compaction = %d", after.Segments)
	}
	checkOracle("compacted")
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh Open must auto-attach and still agree with the oracle.
	store, _, err = Open(dir, ingestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.NumRows() != fullRows {
		t.Fatalf("reopened NumRows = %d, want %d", store.NumRows(), fullRows)
	}
	if _, ok := store.IngestStats(); !ok {
		t.Fatal("reopen did not attach the append path")
	}
	checkOracle("reopened")
}

// tableSlice copies rows [start, start+n) of src into a fresh table.
func tableSlice(src *Table, start, n int) *Table {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = start + i
	}
	return src.Select(rows)
}
