package powerdrill

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitScrub polls LastScrub until accept returns true or the deadline
// passes; background passes run on a ticker, so tests must wait.
func waitScrub(t *testing.T, s *Store, accept func(ScrubStatus) bool) ScrubStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ss, ok := s.LastScrub(); ok && accept(ss) {
			return ss
		}
		time.Sleep(5 * time.Millisecond)
	}
	ss, ok := s.LastScrub()
	t.Fatalf("no acceptable scrub pass before deadline (last=%+v ok=%v)", ss, ok)
	return ScrubStatus{}
}

// TestBackgroundScrub: Options.ScrubInterval runs the offline scrub on a
// cadence against the opened directory, publishing each verdict through
// LastScrub — clean passes first, then corruption once a byte flips on
// disk, with queries unaffected throughout.
func TestBackgroundScrub(t *testing.T) {
	tbl := GenerateQueryLogs(4000, 11)
	store, err := Build(tbl, Options{
		PartitionFields: []string{"country", "table_name"},
		MaxChunkRows:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := store.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}

	back, _, err := Open(dir, Options{ScrubInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()

	clean := waitScrub(t, back, func(ss ScrubStatus) bool { return ss.Files > 0 })
	if clean.Corrupt != 0 || len(clean.Failures) != 0 || clean.Err != "" {
		t.Fatalf("first pass not clean: %+v", clean)
	}
	if clean.Records == 0 {
		t.Fatalf("clean pass verified no records: %+v", clean)
	}

	// Flip a byte in one checksummed file; a later pass must name it.
	rep, err := Scrub(dir)
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, f := range rep.Files {
		if f.Records > 0 && f.Bytes > 8 {
			target = filepath.Join(dir, f.Path)
			break
		}
	}
	if target == "" {
		t.Fatal("no checksummed file to corrupt")
	}
	blob, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x20
	if err := os.WriteFile(target, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	bad := waitScrub(t, back, func(ss ScrubStatus) bool { return ss.Corrupt > 0 })
	if len(bad.Failures) == 0 {
		t.Fatalf("corrupt pass lists no failures: %+v", bad)
	}
	if !bad.Time.After(clean.Time) {
		t.Fatalf("corrupt pass not newer than clean pass: %v vs %v", bad.Time, clean.Time)
	}

	// The scrub is advisory: the already-resident store still answers.
	if _, err := back.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err != nil {
		t.Fatalf("query during scrub alarm: %v", err)
	}

	// Close stops the cadence; the verdict freezes.
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	frozen, ok := back.LastScrub()
	if !ok {
		t.Fatal("verdict lost on close")
	}
	time.Sleep(60 * time.Millisecond)
	after, _ := back.LastScrub()
	if !after.Time.Equal(frozen.Time) {
		t.Fatal("scrub loop still running after Close")
	}
}
