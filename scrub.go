package powerdrill

import (
	"errors"
	"time"

	"powerdrill/internal/ingest"
)

// ScrubFile is one file's verdict from an offline scrub: path (relative
// to the store root), kind, size, records verified, and the first
// failure found (empty when clean).
type ScrubFile = ingest.ScrubFile

// ScrubReport is the result of scrubbing a store directory: one verdict
// per file plus totals. Corrupt > 0 means at least one file failed
// verification.
type ScrubReport = ingest.ScrubReport

// Scrub verifies every checksummed byte of the store directory at dir —
// base column files, generation manifests, sealed segments, WAL frames
// and the virtual sidecar — without opening it for query, so it works
// on stores too corrupt to open. Read-only: corruption is reported, one
// verdict per file, never repaired. Stores persisted before format v5
// scrub clean with zero records verified (nothing carries a checksum).
func Scrub(dir string) (*ScrubReport, error) {
	return ingest.ScrubStore(dir)
}

// Scrub verifies the on-disk files of this store in place; the store
// must have been opened from a directory (Open). Queries may run
// concurrently — the scrub only reads. See the package-level Scrub.
func (s *Store) Scrub() (*ScrubReport, error) {
	if s.dir == "" {
		return nil, errors.New("powerdrill: scrub requires a store opened from disk (use Open or the package-level Scrub)")
	}
	return ingest.ScrubStore(s.dir)
}

// ScrubStatus summarizes one background scrub pass
// (Options.ScrubInterval).
type ScrubStatus struct {
	// Time is when the pass finished; Elapsed how long it took.
	Time    time.Time
	Elapsed time.Duration
	// Files, Records and Corrupt are the pass totals: files visited,
	// checksummed records verified clean, files that failed.
	Files   int
	Records int
	Corrupt int
	// Failures lists the failing files' verdicts ("path: error"), capped
	// at scrubFailureCap entries.
	Failures []string
	// Err is set when the pass itself could not run (the directory walk
	// failed); the per-file verdicts above are then from no files.
	Err string
}

const scrubFailureCap = 8

// LastScrub returns the most recent background scrub verdict; ok is
// false while no pass has completed (or scrubbing is off).
func (s *Store) LastScrub() (ScrubStatus, bool) {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if s.scrubLast == nil {
		return ScrubStatus{}, false
	}
	return *s.scrubLast, true
}

// startScrubLoop begins the background cadence: one pass per interval
// (no immediate pass — an Open should not double its disk traffic), each
// pass recorded for LastScrub. Close stops the loop.
func (s *Store) startScrubLoop(interval time.Duration) {
	stop := make(chan struct{})
	s.scrubMu.Lock()
	s.scrubStop = stop
	s.scrubMu.Unlock()
	s.scrubWG.Add(1)
	go func() {
		defer s.scrubWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.scrubOnce()
			}
		}
	}()
}

// scrubOnce runs one pass and records the verdict.
func (s *Store) scrubOnce() {
	start := time.Now()
	status := ScrubStatus{}
	rep, err := ingest.ScrubStore(s.dir)
	status.Time = time.Now()
	status.Elapsed = time.Since(start)
	if err != nil {
		status.Err = err.Error()
	} else {
		status.Files = len(rep.Files)
		status.Records = rep.Records
		status.Corrupt = rep.Corrupt
		for _, f := range rep.Files {
			if f.OK() || len(status.Failures) >= scrubFailureCap {
				continue
			}
			status.Failures = append(status.Failures, f.Path+": "+f.Err)
		}
	}
	s.scrubMu.Lock()
	s.scrubLast = &status
	s.scrubMu.Unlock()
}

// stopScrubLoop halts the cadence and waits for an in-flight pass.
func (s *Store) stopScrubLoop() {
	s.scrubMu.Lock()
	if s.scrubStop != nil {
		close(s.scrubStop)
		s.scrubStop = nil
	}
	s.scrubMu.Unlock()
	s.scrubWG.Wait()
}
