package powerdrill

import (
	"errors"

	"powerdrill/internal/ingest"
)

// ScrubFile is one file's verdict from an offline scrub: path (relative
// to the store root), kind, size, records verified, and the first
// failure found (empty when clean).
type ScrubFile = ingest.ScrubFile

// ScrubReport is the result of scrubbing a store directory: one verdict
// per file plus totals. Corrupt > 0 means at least one file failed
// verification.
type ScrubReport = ingest.ScrubReport

// Scrub verifies every checksummed byte of the store directory at dir —
// base column files, generation manifests, sealed segments, WAL frames
// and the virtual sidecar — without opening it for query, so it works
// on stores too corrupt to open. Read-only: corruption is reported, one
// verdict per file, never repaired. Stores persisted before format v5
// scrub clean with zero records verified (nothing carries a checksum).
func Scrub(dir string) (*ScrubReport, error) {
	return ingest.ScrubStore(dir)
}

// Scrub verifies the on-disk files of this store in place; the store
// must have been opened from a directory (Open). Queries may run
// concurrently — the scrub only reads. See the package-level Scrub.
func (s *Store) Scrub() (*ScrubReport, error) {
	if s.dir == "" {
		return nil, errors.New("powerdrill: scrub requires a store opened from disk (use Open or the package-level Scrub)")
	}
	return ingest.ScrubStore(s.dir)
}
