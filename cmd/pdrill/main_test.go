package main

import (
	"os"
	"path/filepath"
	"testing"

	"powerdrill"

	"powerdrill/internal/backends"
	"powerdrill/internal/value"
)

func TestParseSchema(t *testing.T) {
	names, kinds, err := parseSchema("ts:int64, name:string,score:float64")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[1] != "name" {
		t.Fatalf("names = %v", names)
	}
	if kinds[0] != value.KindInt64 || kinds[1] != value.KindString || kinds[2] != value.KindFloat64 {
		t.Fatalf("kinds = %v", kinds)
	}
	for _, bad := range []string{"", "noColon", "x:blob", "a:int64,,b:string"} {
		if _, _, err := parseSchema(bad); err == nil {
			t.Errorf("parseSchema(%q) succeeded", bad)
		}
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	tbl := powerdrill.GenerateQueryLogs(500, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "logs.csv")
	if _, err := backends.WriteCSV(tbl, path); err != nil {
		t.Fatal(err)
	}
	names := []string{"timestamp", "table_name", "latency", "country", "user"}
	kinds := []value.Kind{value.KindInt64, value.KindString, value.KindInt64, value.KindString, value.KindString}
	back, err := loadCSV(path, names, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 500 {
		t.Fatalf("NumRows = %d", back.NumRows())
	}
	for i := 0; i < 500; i += 50 {
		if back.Column("table_name").Strs[i] != tbl.Column("table_name").Strs[i] {
			t.Fatalf("row %d mismatch", i)
		}
		if back.Column("latency").Ints[i] != tbl.Column("latency").Ints[i] {
			t.Fatalf("row %d latency mismatch", i)
		}
	}
	if _, err := loadCSV(filepath.Join(dir, "nope.csv"), names, kinds); err == nil {
		t.Error("missing file accepted")
	}
}

// TestEndToEndPipeline drives generate → import → query through the same
// code paths the subcommands use.
func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "logs.csv")
	tbl := powerdrill.GenerateQueryLogs(2000, 11)
	if _, err := backends.WriteCSV(tbl, csvPath); err != nil {
		t.Fatal(err)
	}
	names := []string{"timestamp", "table_name", "latency", "country", "user"}
	kinds := []value.Kind{value.KindInt64, value.KindString, value.KindInt64, value.KindString, value.KindString}
	loaded, err := loadCSV(csvPath, names, kinds)
	if err != nil {
		t.Fatal(err)
	}
	store, err := powerdrill.Build(loaded, powerdrill.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
		StringDict:       powerdrill.StringDictTrie,
	})
	if err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "store")
	if err := store.Save(storeDir, "zippy"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "manifest.json")); err != nil {
		t.Fatal("manifest missing after save")
	}
	back, _, err := powerdrill.Open(storeDir, powerdrill.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 3;`)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	full, err := back.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range full.Rows {
		total += r[1].Int()
	}
	if total != 2000 {
		t.Errorf("counts sum to %d, want 2000", total)
	}
	if len(res.Rows) != 3 {
		t.Errorf("LIMIT 3 returned %d rows", len(res.Rows))
	}
}
