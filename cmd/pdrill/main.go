// Command pdrill is the PowerDrill command line: generate synthetic query
// logs, import them (or CSV files) into a partitioned column store, and
// run SQL queries against it.
//
// Usage:
//
//	pdrill generate -rows 1000000 -out logs.csv
//	pdrill import   -csv logs.csv -schema "timestamp:int64,table_name:string,latency:int64,country:string,user:string" \
//	                -store ./store -partition country,table_name -codec zippy
//	pdrill query    -store ./store -q 'SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;'
//	pdrill info     -store ./store
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"powerdrill"

	"powerdrill/internal/backends"
	"powerdrill/internal/value"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = runGenerate(os.Args[2:])
	case "import":
		err = runImport(os.Args[2:])
	case "append":
		err = runAppend(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "scrub":
		err = runScrub(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdrill: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pdrill <generate|import|append|query|info|scrub> [flags]
  generate -rows N -seed S -out FILE.csv
  import   -csv FILE -schema name:kind,...  -store DIR [-partition f1,f2] [-chunk N] [-codec zippy] [-trie] [-reorder]
  append   -csv FILE -schema name:kind,...  -store DIR [-batch N] [-seal N] [-compact]
           streams rows into an existing store (queryable while appending)
  query    -store DIR -q SQL [-parallelism N] [-memory-budget BYTES] [-memory-policy lru|2q|arc]
           (-q - reads queries from stdin)
           -shards DIR1,DIR2,... replaces -store with an in-process cluster
           (replicated, hedged, health-tracked); [-replicas N] [-deadline D]
           -connect "a,b;c,d" queries a remote fleet of pdserver processes
           (leaf or mixer nodes; ';' separates subtrees, ',' replicas)
  info     -store DIR
  scrub    -store DIR [-v]
           verifies every checksummed byte offline (columns, segments,
           WAL, manifests); exits 1 if any file fails`)
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	rows := fs.Int("rows", 1_000_000, "rows to generate")
	seed := fs.Int64("seed", 2012, "generator seed")
	out := fs.String("out", "logs.csv", "output CSV path")
	fs.Parse(args)

	tbl := powerdrill.GenerateQueryLogs(*rows, *seed)
	if _, err := backends.WriteCSV(tbl, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s (schema: timestamp:int64,table_name:string,latency:int64,country:string,user:string)\n",
		*rows, *out)
	return nil
}

// parseSchema parses "name:kind,...".
func parseSchema(s string) ([]string, []value.Kind, error) {
	var names []string
	var kinds []value.Kind
	for _, part := range strings.Split(s, ",") {
		bits := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(bits) != 2 {
			return nil, nil, fmt.Errorf("bad schema field %q (want name:kind)", part)
		}
		k, err := value.ParseKind(bits[1])
		if err != nil {
			return nil, nil, err
		}
		names = append(names, bits[0])
		kinds = append(kinds, k)
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("empty schema")
	}
	return names, kinds, nil
}

func runImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	csvPath := fs.String("csv", "", "input CSV (headerless)")
	schema := fs.String("schema", "", "schema name:kind,... for the CSV")
	storeDir := fs.String("store", "", "output store directory")
	partition := fs.String("partition", "", "comma-separated partition fields")
	chunk := fs.Int("chunk", 50_000, "max rows per chunk")
	codec := fs.String("codec", "zippy", "store compression codec ('' for raw)")
	trie := fs.Bool("trie", true, "use trie dictionaries for strings")
	reorderRows := fs.Bool("reorder", true, "sort rows by partition fields before chunking")
	fs.Parse(args)
	if *csvPath == "" || *schema == "" || *storeDir == "" {
		return fmt.Errorf("import needs -csv, -schema and -store")
	}
	names, kinds, err := parseSchema(*schema)
	if err != nil {
		return err
	}
	tbl, err := loadCSV(*csvPath, names, kinds)
	if err != nil {
		return err
	}
	opts := powerdrill.Options{
		MaxChunkRows:     *chunk,
		OptimizeElements: true,
		Reorder:          *reorderRows,
	}
	if *partition != "" {
		opts.PartitionFields = strings.Split(*partition, ",")
	}
	if *trie {
		opts.StringDict = powerdrill.StringDictTrie
	}
	start := time.Now()
	store, err := powerdrill.Build(tbl, opts)
	if err != nil {
		return err
	}
	if err := store.Save(*storeDir, *codec); err != nil {
		return err
	}
	fmt.Printf("imported %d rows into %d chunks in %v -> %s\n",
		store.NumRows(), store.NumChunks(), time.Since(start).Round(time.Millisecond), *storeDir)
	return nil
}

// loadCSV reads a headerless CSV into a raw table.
func loadCSV(path string, names []string, kinds []value.Kind) (*powerdrill.Table, error) {
	be := backends.NewCSV(path, backends.Schema{Names: names, Kinds: kinds})
	it, err := be.Scan(names)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	strCols := map[string][]string{}
	intCols := map[string][]int64{}
	fltCols := map[string][]float64{}
	for {
		r, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i, name := range names {
			v := r.ColumnValue(name)
			switch kinds[i] {
			case value.KindString:
				strCols[name] = append(strCols[name], v.Str())
			case value.KindInt64:
				intCols[name] = append(intCols[name], v.Int())
			case value.KindFloat64:
				fltCols[name] = append(fltCols[name], v.Float())
			}
		}
	}
	tbl := powerdrill.NewTable("data")
	for i, name := range names {
		switch kinds[i] {
		case value.KindString:
			tbl.AddStringColumn(name, strCols[name])
		case value.KindInt64:
			tbl.AddInt64Column(name, intCols[name])
		case value.KindFloat64:
			tbl.AddFloat64Column(name, fltCols[name])
		}
	}
	return tbl, nil
}

// runAppend streams a CSV into an existing store through the ingestion
// path: rows buffer in memory, seal into on-disk segments, and are
// queryable (snapshot-isolated) the moment Append returns.
func runAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	csvPath := fs.String("csv", "", "input CSV (headerless)")
	schema := fs.String("schema", "", "schema name:kind,... for the CSV")
	storeDir := fs.String("store", "", "existing store directory")
	batch := fs.Int("batch", 10_000, "rows per append batch")
	sealRows := fs.Int("seal", 0, "write-buffer rows per sealed segment (0 = store chunk size)")
	compact := fs.Bool("compact", false, "compact all ingest segments into one before exiting")
	fs.Parse(args)
	if *csvPath == "" || *schema == "" || *storeDir == "" {
		return fmt.Errorf("append needs -csv, -schema and -store")
	}
	names, kinds, err := parseSchema(*schema)
	if err != nil {
		return err
	}
	tbl, err := loadCSV(*csvPath, names, kinds)
	if err != nil {
		return err
	}
	store, _, err := powerdrill.Open(*storeDir, powerdrill.Options{IngestSealRows: *sealRows})
	if err != nil {
		return err
	}
	defer store.Close()

	start := time.Now()
	total := tbl.NumRows()
	for at := 0; at < total; at += *batch {
		n := *batch
		if at+n > total {
			n = total - at
		}
		rows := make([]int, n)
		for i := range rows {
			rows[i] = at + i
		}
		if err := store.Append(tbl.Select(rows)); err != nil {
			return err
		}
	}
	if err := store.Flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *compact {
		if _, err := store.CompactNow(); err != nil {
			return err
		}
	}
	st, _ := store.IngestStats()
	fmt.Printf("appended %d rows in %v (%.0f rows/s) -> %s\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), *storeDir)
	fmt.Printf("ingest: generation %d, %d segments (%d rows), %d seals, %d compactions; store now %d rows\n",
		st.Gen, st.Segments, st.SegmentRows, st.Seals, st.Compactions, store.NumRows())
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	shards := fs.String("shards", "", "comma-separated shard store directories: query an in-process cluster instead of one store")
	connect := fs.String("connect", "", `remote node address sets ("a,b;c,d"): query a fleet of pdserver leaf/mixer processes`)
	q := fs.String("q", "", "SQL query, or '-' to read one query per line from stdin")
	parallelism := fs.Int("parallelism", 0, "chunk-scan workers per query (0 = all cores, 1 = sequential)")
	memBudget := fs.Int64("memory-budget", 0, "resident column byte budget (0 = unlimited, columns still load lazily)")
	memPolicy := fs.String("memory-policy", "2q", "column eviction policy: lru, 2q or arc")
	replicas := fs.Int("replicas", 2, "replicas per shard with -shards")
	deadline := fs.Duration("deadline", 10*time.Second, "per-query deadline with -shards (0 = none)")
	fs.Parse(args)
	if *q == "" || (*storeDir == "" && *shards == "" && *connect == "") {
		return fmt.Errorf("query needs -q and one of -store, -shards or -connect")
	}
	if *connect != "" {
		var sets [][]string
		for _, grp := range strings.Split(*connect, ";") {
			var addrs []string
			for _, a := range strings.Split(grp, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
			if len(addrs) > 0 {
				sets = append(sets, addrs)
			}
		}
		c, err := powerdrill.ConnectCluster(sets, powerdrill.ClusterOptions{Deadline: *deadline})
		if err != nil {
			return err
		}
		fmt.Printf("connected to %d remote subtrees (deadline %v)\n", len(sets), *deadline)
		return clusterQueries(c, *q)
	}
	if *shards != "" {
		dirs := strings.Split(*shards, ",")
		c, err := powerdrill.OpenCluster(dirs, powerdrill.ClusterOptions{
			Replicas: *replicas,
			Deadline: *deadline,
			Store: powerdrill.Options{
				ResultCacheBytes:  64 << 20,
				Parallelism:       *parallelism,
				MemoryBudgetBytes: *memBudget,
				MemoryPolicy:      *memPolicy,
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("opened cluster: %d shards x %d replicas (deadline %v)\n",
			len(dirs), *replicas, *deadline)
		return clusterQueries(c, *q)
	}
	store, bytesRead, err := powerdrill.Open(*storeDir, powerdrill.Options{
		ResultCacheBytes:  64 << 20,
		Parallelism:       *parallelism,
		MemoryBudgetBytes: *memBudget,
		MemoryPolicy:      *memPolicy,
	})
	if err != nil {
		return err
	}
	fmt.Printf("opened store lazily: %d rows, %d chunks (%0.2f MB manifest; columns load on demand)\n",
		store.NumRows(), store.NumChunks(), float64(bytesRead)/1e6)
	runOne := func(sqlText string) error {
		start := time.Now()
		res, err := store.Query(sqlText)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		printResult(res)
		warmth := "warm"
		if res.Stats.ColdLoads > 0 {
			warmth = fmt.Sprintf("cold: %d columns (%d chunks, %d dicts), %.2f MB from disk in %d runs",
				res.Stats.ColdLoads, res.Stats.ColdChunkLoads, res.Stats.ColdDictLoads,
				float64(res.Stats.DiskBytesRead)/1e6, res.Stats.ReadRuns)
		}
		if res.Stats.CacheSkippedChunks > 0 {
			warmth += fmt.Sprintf("; %d chunks answered from result cache unloaded", res.Stats.CacheSkippedChunks)
		}
		if res.Stats.BloomSkippedChunks > 0 {
			warmth += fmt.Sprintf("; %d chunks pruned by bloom filters", res.Stats.BloomSkippedChunks)
		}
		fmt.Printf("-- %d rows in %v; chunks: %d/%d active, %d skipped, %d cached, %d scanned; %s\n\n",
			len(res.Rows), elapsed.Round(time.Microsecond),
			res.Stats.ActiveChunks, res.Stats.ChunksTotal,
			res.Stats.ChunksSkipped, res.Stats.ChunksCached, res.Stats.ChunksScanned, warmth)
		return nil
	}
	defer func() {
		if ms, ok := store.MemStats(); ok {
			budget := "unlimited"
			if ms.BudgetBytes > 0 {
				budget = fmt.Sprintf("%.2f MB", float64(ms.BudgetBytes)/1e6)
			}
			virtual := ""
			if ms.VirtualBytes > 0 {
				virtual = fmt.Sprintf(", %.2f MB virtual columns", float64(ms.VirtualBytes)/1e6)
			}
			fmt.Printf("memory: %.2f MB resident in %d entries (budget %s, policy %s%s); %d cold loads, %d evictions, %.0f%% hit rate\n",
				float64(ms.ResidentBytes)/1e6, ms.ResidentItems, budget, ms.Policy, virtual,
				ms.ColdLoads, ms.Evictions, 100*ms.HitRate())
		}
	}()
	if *q != "-" {
		return runOne(*q)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if err := runOne(line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// clusterQueries answers queries from an assembled cluster — in-process
// shard directories or a remote fleet alike: replicated subtrees, hedged
// dispatch, per-child health, and partial answers with coverage reported
// when shards are missing.
func clusterQueries(c *powerdrill.Cluster, q string) error {
	runOne := func(sqlText string) error {
		start := time.Now()
		res, err := c.Query(sqlText)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		printResult(res)
		coverage := ""
		if res.Coverage < 1 {
			coverage = fmt.Sprintf("; PARTIAL ANSWER: %.1f%% of rows covered, %d shards missing",
				100*res.Coverage, res.Stats.ShardsMissing)
		}
		fmt.Printf("-- %d rows in %v%s\n\n", len(res.Rows), elapsed.Round(time.Microsecond), coverage)
		return nil
	}
	defer func() {
		st := c.Stats()
		fmt.Printf("cluster: %d queries, %d sub-queries, %d hedges, %d retries, %d replica races, %d primary failures\n",
			st.Queries, st.SubQueries, st.Hedges, st.Retries, st.ReplicaRaces, st.PrimaryFailures)
		if st.PartialAnswers > 0 || st.DeadlineExpired > 0 || st.BreakerOpens > 0 {
			fmt.Printf("cluster: %d partial answers, %d shards missed, %d deadline expiries, %d breaker opens, %d breaker skips\n",
				st.PartialAnswers, st.ShardsMissing, st.DeadlineExpired, st.BreakerOpens, st.BreakerSkips)
		}
		open := 0
		for _, h := range c.Health() {
			if h.Breaker == "open" || h.Breaker == "half-open" {
				open++
				fmt.Printf("cluster: leaf %s (shard %d replica %d) %s: %s\n",
					h.Name, h.Shard, h.Replica, h.Breaker, h.LastError)
			}
		}
		if open == 0 {
			fmt.Printf("cluster: all %d leaves healthy\n", len(c.Health()))
		}
	}()
	if q != "-" {
		return runOne(q)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if err := runOne(line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
	return sc.Err()
}

func printResult(res *powerdrill.Result) {
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}

// runScrub walks a store directory offline and verifies every record
// checksum, printing one verdict per file. It never opens the store for
// query — a store too corrupt to open still scrubs — and never repairs.
func runScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	verbose := fs.Bool("v", false, "print clean files too, not just failures")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("scrub needs -store")
	}
	start := time.Now()
	rep, err := powerdrill.Scrub(*storeDir)
	if err != nil {
		return err
	}
	var bytes int64
	for _, f := range rep.Files {
		bytes += f.Bytes
		if f.OK() {
			if *verbose {
				fmt.Printf("ok      %-40s %-24s %8d bytes  %d records\n", f.Path, f.Kind, f.Bytes, f.Records)
			}
			continue
		}
		fmt.Printf("CORRUPT %-40s %-24s %s\n", f.Path, f.Kind, f.Err)
	}
	fmt.Printf("scrubbed %d files (%.2f MB) in %v: %d records verified, %d corrupt\n",
		len(rep.Files), float64(bytes)/1e6, time.Since(start).Round(time.Millisecond), rep.Records, rep.Corrupt)
	if rep.Corrupt > 0 {
		return fmt.Errorf("%d corrupt file(s)", rep.Corrupt)
	}
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("info needs -store")
	}
	store, _, err := powerdrill.Open(*storeDir, powerdrill.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("store: %d rows, %d chunks\n", store.NumRows(), store.NumChunks())
	fmt.Println("columns:")
	for _, cn := range store.Columns() {
		m, err := store.Memory(cn)
		if err != nil {
			return err
		}
		fmt.Printf("  %-24s elements %8.2f MB  chunk-dicts %8.2f MB  dict %8.2f MB\n",
			cn, float64(m.Elements)/1e6, float64(m.ChunkDicts)/1e6, float64(m.GlobalDict)/1e6)
	}
	if ms, ok := store.MemStats(); ok {
		fmt.Printf("on disk: %.2f MB across %d column files\n", float64(ms.DiskBytesRead)/1e6, ms.ColdLoads)
	}
	return nil
}
