package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"powerdrill"
)

func TestStatzHandler(t *testing.T) {
	tbl := powerdrill.GenerateQueryLogs(2000, 1)
	built, err := powerdrill.Build(tbl, powerdrill.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	store, _, err := powerdrill.Open(dir, powerdrill.Options{
		ResultCacheBytes:  1 << 20,
		MemoryBudgetBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 5;`); err != nil {
		t.Fatal(err)
	}
	// Materialize a virtual field so the virtual_bytes gauge has something
	// to report (persisted into the store's sidecar and budgeted).
	if _, err := store.Query(`SELECT date(timestamp) AS d, COUNT(*) AS c FROM data GROUP BY d ORDER BY d ASC LIMIT 5;`); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	statzHandler(store).ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var p statzPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if p.Rows != 2000 {
		t.Fatalf("rows = %d", p.Rows)
	}
	if p.Engine.Queries != 2 {
		t.Fatalf("engine queries = %d", p.Engine.Queries)
	}
	if p.Engine.ActiveChunks == 0 {
		t.Fatalf("engine active chunks = %d", p.Engine.ActiveChunks)
	}
	if p.Engine.ColdChunkLoads == 0 || p.Engine.ColdDictLoads == 0 {
		t.Fatalf("chunk-granular cold counters = %d/%d",
			p.Engine.ColdChunkLoads, p.Engine.ColdDictLoads)
	}
	if p.Memory == nil {
		t.Fatal("memory section missing for a lazily opened store")
	}
	if p.Memory.BudgetBytes != 1<<20 || p.Memory.ColdLoads == 0 || p.Memory.Policy != "2q" {
		t.Fatalf("memory section = %+v", p.Memory)
	}
	if p.Memory.VirtualBytes == 0 {
		t.Fatalf("virtual_bytes = 0 after materializing a virtual field: %+v", p.Memory)
	}
	if p.ResultCache == nil {
		t.Fatal("result cache section missing")
	}
	if p.Cluster != nil {
		t.Fatal("cluster section present on a single leaf")
	}
}

// TestCoordinatorStatzHandler: coordinator-mode /statz must expose the
// fan-out counters, coverage accounting and per-leaf breaker health, and
// /query must report coverage.
func TestCoordinatorStatzHandler(t *testing.T) {
	// Persist two shards of the same synthetic table.
	tbl := powerdrill.GenerateQueryLogs(2000, 7)
	var dirs []string
	for i, shard := range tbl.Shard(2) {
		built, err := powerdrill.Build(shard, powerdrill.Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     500,
			OptimizeElements: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := built.Save(dir, "zippy"); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		dirs = append(dirs, dir)
	}
	c, err := powerdrill.OpenCluster(dirs, powerdrill.ClusterOptions{
		Replicas: 2,
		Deadline: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	q := `SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 5;`
	queryHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/query?q="+url.QueryEscape(q), nil))
	if rec.Code != 200 {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
	}
	var qr queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatalf("bad query JSON: %v", err)
	}
	if qr.Coverage != 1 || qr.ShardsMissing != 0 {
		t.Fatalf("healthy coverage = %v, missing = %d", qr.Coverage, qr.ShardsMissing)
	}
	if len(qr.Rows) == 0 || len(qr.Columns) != 2 {
		t.Fatalf("query response = %+v", qr)
	}

	// A hand-typed curl leaves the trailing SQL ';' unescaped; net/url
	// drops the whole q pair then. The handler must still find the query.
	rec = httptest.NewRecorder()
	raw := "/query?q=" + strings.ReplaceAll(q, " ", "+")
	queryHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", raw, nil))
	if rec.Code != 200 {
		t.Fatalf("raw-semicolon query status %d: %s", rec.Code, rec.Body.String())
	}
	var qr2 queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr2); err != nil {
		t.Fatalf("bad raw-semicolon query JSON: %v", err)
	}
	if len(qr2.Rows) != len(qr.Rows) {
		t.Fatalf("raw-semicolon query rows = %d, want %d", len(qr2.Rows), len(qr.Rows))
	}

	rec = httptest.NewRecorder()
	coordinatorStatzHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	if rec.Code != 200 {
		t.Fatalf("statz status %d", rec.Code)
	}
	var p statzPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad statz JSON: %v\n%s", err, rec.Body.String())
	}
	cl := p.Cluster
	if cl == nil {
		t.Fatal("cluster section missing in coordinator mode")
	}
	if cl.Queries != 2 || cl.SubQueries != 4 {
		t.Fatalf("cluster counters = %+v", cl)
	}
	if cl.ShardsMissing != 0 || cl.PartialAnswers != 0 {
		t.Fatalf("coverage counters nonzero on a healthy cluster: %+v", cl)
	}
	if len(cl.Leaves) != 4 {
		t.Fatalf("leaves = %d, want 4 (2 shards x 2 replicas)", len(cl.Leaves))
	}
	var successes int64
	for _, leaf := range cl.Leaves {
		if leaf.Breaker != "closed" {
			t.Errorf("leaf %s breaker = %q, want closed", leaf.Name, leaf.Breaker)
		}
		successes += leaf.Successes
	}
	if successes == 0 {
		t.Error("no leaf successes recorded after a query")
	}
	if p.Memory == nil {
		t.Fatal("memory section missing for a coordinator over lazily opened shards")
	}
}

// TestIngestHandler drives POST /ingest end to end: appended rows are
// queryable immediately, the flush barrier seals them, and /statz grows
// an ingest section.
func TestIngestHandler(t *testing.T) {
	tbl := powerdrill.GenerateQueryLogs(1000, 3)
	built, err := powerdrill.Build(tbl, powerdrill.Options{
		PartitionFields: []string{"country", "table_name"},
		MaxChunkRows:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	store, _, err := powerdrill.Open(dir, powerdrill.Options{IngestSealRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	body := `{"columns":[
		{"name":"timestamp","kind":"int64","ints":[1,2,3]},
		{"name":"table_name","kind":"string","strs":["t1","t1","t2"]},
		{"name":"latency","kind":"int64","ints":[10,20,30]},
		{"name":"country","kind":"string","strs":["zz","zz","zz"]},
		{"name":"user","kind":"string","strs":["u1","u2","u3"]}]}`
	rec := httptest.NewRecorder()
	ingestHandler(store).ServeHTTP(rec, httptest.NewRequest("POST", "/ingest?flush=1", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["appended"] != 3 || resp["rows"] != 1003 {
		t.Fatalf("response = %v", resp)
	}
	res, err := store.Query(`SELECT COUNT(*) AS c FROM data WHERE country = "zz";`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("appended rows not visible: %v", res.Rows)
	}

	rec = httptest.NewRecorder()
	statzHandler(store).ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var p statzPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Ingest == nil {
		t.Fatal("ingest section missing after appends")
	}
	if p.Ingest.RowsAppended != 3 || p.Ingest.Seals != 1 || p.Ingest.Segments != 1 {
		t.Fatalf("ingest section = %+v", p.Ingest)
	}
	if p.Rows != 1003 {
		t.Fatalf("rows = %d, want 1003", p.Rows)
	}

	// Schema violations surface as 422, not 500.
	rec = httptest.NewRecorder()
	ingestHandler(store).ServeHTTP(rec, httptest.NewRequest("POST", "/ingest",
		strings.NewReader(`{"columns":[{"name":"latency","kind":"string","strs":["x"]}]}`)))
	if rec.Code != 422 {
		t.Fatalf("bad batch status = %d", rec.Code)
	}
}

// TestGracefulShutdown drives the leaf shutdown sequence end to end over
// a real HTTP server: appends accepted before the signal survive (the
// shutdown flushes the write buffer into a committed segment), in-flight
// requests drain, and afterwards both the HTTP listener and the store
// refuse new work with a clean error rather than a panic or a hang.
func TestGracefulShutdown(t *testing.T) {
	tbl := powerdrill.GenerateQueryLogs(1000, 5)
	built, err := powerdrill.Build(tbl, powerdrill.Options{
		PartitionFields: []string{"country", "table_name"},
		MaxChunkRows:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	store, _, err := powerdrill.Open(dir, powerdrill.Options{IngestSealRows: 10_000})
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(statzMux(store))
	defer srv.Close()

	body := `{"columns":[
		{"name":"timestamp","kind":"int64","ints":[1,2,3]},
		{"name":"table_name","kind":"string","strs":["t1","t1","t2"]},
		{"name":"latency","kind":"int64","ints":[10,20,30]},
		{"name":"country","kind":"string","strs":["zz","zz","zz"]},
		{"name":"user","kind":"string","strs":["u1","u2","u3"]}]}`
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest before shutdown: status %d", resp.StatusCode)
	}

	// The seal threshold is far away: the 3 rows are only in the write
	// buffer (and the WAL) when the "signal" arrives.
	if err := shutdownLeaf(nopListener{}, srv.Config, store, nil); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The HTTP server refuses new connections.
	if _, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(body)); err == nil {
		t.Fatal("ingest after shutdown succeeded over HTTP")
	}
	// The store refuses appends with a clean error.
	if err := store.Append(powerdrill.NewTable("data")); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Fatalf("append on closed store: err = %v", err)
	}

	// Reopen: the flushed rows are committed and queryable.
	back, _, err := powerdrill.Open(dir, powerdrill.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	res, err := back.Query(`SELECT COUNT(*) AS c FROM data WHERE country = "zz";`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("rows appended before shutdown lost: %v", res.Rows)
	}
}

// nopListener satisfies net.Listener for shutdown tests where the RPC
// listener is owned by httptest.
type nopListener struct{}

func (nopListener) Accept() (net.Conn, error) { return nil, net.ErrClosed }
func (nopListener) Close() error              { return nil }
func (nopListener) Addr() net.Addr            { return &net.TCPAddr{} }
