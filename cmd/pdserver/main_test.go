package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"powerdrill"
)

func TestStatzHandler(t *testing.T) {
	tbl := powerdrill.GenerateQueryLogs(2000, 1)
	built, err := powerdrill.Build(tbl, powerdrill.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	store, _, err := powerdrill.Open(dir, powerdrill.Options{
		ResultCacheBytes:  1 << 20,
		MemoryBudgetBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 5;`); err != nil {
		t.Fatal(err)
	}
	// Materialize a virtual field so the virtual_bytes gauge has something
	// to report (persisted into the store's sidecar and budgeted).
	if _, err := store.Query(`SELECT date(timestamp) AS d, COUNT(*) AS c FROM data GROUP BY d ORDER BY d ASC LIMIT 5;`); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	statzHandler(store).ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var p statzPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if p.Rows != 2000 {
		t.Fatalf("rows = %d", p.Rows)
	}
	if p.Engine.Queries != 2 {
		t.Fatalf("engine queries = %d", p.Engine.Queries)
	}
	if p.Engine.ActiveChunks == 0 {
		t.Fatalf("engine active chunks = %d", p.Engine.ActiveChunks)
	}
	if p.Engine.ColdChunkLoads == 0 || p.Engine.ColdDictLoads == 0 {
		t.Fatalf("chunk-granular cold counters = %d/%d",
			p.Engine.ColdChunkLoads, p.Engine.ColdDictLoads)
	}
	if p.Memory == nil {
		t.Fatal("memory section missing for a lazily opened store")
	}
	if p.Memory.BudgetBytes != 1<<20 || p.Memory.ColdLoads == 0 || p.Memory.Policy != "2q" {
		t.Fatalf("memory section = %+v", p.Memory)
	}
	if p.Memory.VirtualBytes == 0 {
		t.Fatalf("virtual_bytes = 0 after materializing a virtual field: %+v", p.Memory)
	}
	if p.ResultCache == nil {
		t.Fatal("result cache section missing")
	}
}
