// Command pdserver runs one PowerDrill leaf server: it loads a persisted
// store (one shard) and answers partial queries over net/rpc, the role of
// an individual machine in the paper's Section 4 deployment. A coordinator
// built with powerdrill.ConnectCluster fans queries out to a fleet of
// pdserver processes and re-aggregates through the execution tree.
//
// Usage:
//
//	pdserver -store ./shard0 -listen :7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"powerdrill"
)

func main() {
	storeDir := flag.String("store", "", "persisted store directory (one shard)")
	listen := flag.String("listen", ":7070", "listen address")
	cacheBytes := flag.Int64("cache", 64<<20, "result cache bytes")
	parallelism := flag.Int("parallelism", 0, "chunk-scan workers per query (0 = all cores, 1 = sequential)")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "pdserver: -store is required")
		os.Exit(2)
	}
	store, bytesRead, err := powerdrill.Open(*storeDir, powerdrill.Options{
		ResultCacheBytes: *cacheBytes,
		Parallelism:      *parallelism,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pdserver: serving %d rows (%d chunks, %.1f MB loaded) on %s\n",
		store.NumRows(), store.NumChunks(), float64(bytesRead)/1e6, l.Addr())
	if err := powerdrill.ServeShard(l, store); err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
}
