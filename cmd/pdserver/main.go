// Command pdserver runs one PowerDrill leaf server: it loads a persisted
// store (one shard) and answers partial queries over net/rpc, the role of
// an individual machine in the paper's Section 4 deployment. A coordinator
// built with powerdrill.ConnectCluster fans queries out to a fleet of
// pdserver processes and re-aggregates through the execution tree.
//
// The store opens lazily: columns load from disk on first touch, governed
// by -memory-budget, so a leaf can serve far more data than fits in RAM
// (the paper's Section 5). The optional -statz address exposes a JSON
// observability endpoint with resident bytes, budget, evictions and cache
// hit rates.
//
// Usage:
//
//	pdserver -store ./shard0 -listen :7070 -memory-budget 268435456 -statz :8080
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"powerdrill"
)

func main() {
	storeDir := flag.String("store", "", "persisted store directory (one shard)")
	listen := flag.String("listen", ":7070", "listen address")
	cacheBytes := flag.Int64("cache", 64<<20, "result cache bytes")
	parallelism := flag.Int("parallelism", 0, "chunk-scan workers per query (0 = all cores, 1 = sequential)")
	memBudget := flag.Int64("memory-budget", 0, "resident column byte budget (0 = unlimited, columns still load lazily)")
	memPolicy := flag.String("memory-policy", "2q", "column eviction policy: lru, 2q or arc")
	statz := flag.String("statz", "", "HTTP address for the /statz JSON endpoint (disabled when empty)")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "pdserver: -store is required")
		os.Exit(2)
	}
	store, _, err := powerdrill.Open(*storeDir, powerdrill.Options{
		ResultCacheBytes:  *cacheBytes,
		Parallelism:       *parallelism,
		MemoryBudgetBytes: *memBudget,
		MemoryPolicy:      *memPolicy,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
	budget := "unlimited"
	if *memBudget > 0 {
		budget = fmt.Sprintf("%.1f MB", float64(*memBudget)/1e6)
	}
	fmt.Printf("pdserver: serving %d rows (%d chunks, lazy columns, memory budget %s) on %s\n",
		store.NumRows(), store.NumChunks(), budget, l.Addr())
	if *statz != "" {
		go func() {
			if err := serveStatz(*statz, store); err != nil {
				fmt.Fprintf(os.Stderr, "pdserver: statz: %v\n", err)
			}
		}()
		fmt.Printf("pdserver: /statz on %s\n", *statz)
	}
	if err := powerdrill.ServeShard(l, store); err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
}
