// Command pdserver runs one PowerDrill leaf server: it loads a persisted
// store (one shard) and answers partial queries over net/rpc, the role of
// an individual machine in the paper's Section 4 deployment. A coordinator
// built with powerdrill.ConnectCluster fans queries out to a fleet of
// pdserver processes and re-aggregates through the execution tree.
//
// The store opens lazily: columns load from disk on first touch, governed
// by -memory-budget, so a leaf can serve far more data than fits in RAM
// (the paper's Section 5). The optional -statz address exposes a JSON
// observability endpoint with resident bytes, budget, evictions and cache
// hit rates.
//
// With -shards it instead runs as a coordinator: the listed shard
// directories are opened as an in-process cluster (replicated, hedged,
// health-tracked — see docs/cluster.md) and queries are answered over
// HTTP (/query) with per-leaf health on /statz.
//
// With -mixer it runs as an inner serving-tree node: it answers the same
// PartialQuery RPC a leaf does, but computes each answer by fanning out to
// the listed child nodes (leaf or mixer processes — trees stack) and
// shipping one merged partial up. With -connect it runs as a coordinator
// over remote nodes. Both take address sets: ';' separates child subtrees,
// ',' separates a subtree's replica addresses.
//
// Usage:
//
//	pdserver -store ./shard0 -listen :7070 -memory-budget 268435456 -statz :8080
//	pdserver -store ./shard0 -listen :7070 -scrub-interval 1h
//	pdserver -shards ./shard0,./shard1 -statz :8080 -deadline 10s
//	pdserver -mixer "h1:7070,h1b:7070;h2:7070" -listen :7071 -statz :8081
//	pdserver -connect "mix1:7071,mix1b:7071;mix2:7071" -statz :8080
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"powerdrill"
)

func main() {
	storeDir := flag.String("store", "", "persisted store directory (one shard)")
	shards := flag.String("shards", "", "comma-separated shard directories: run as a coordinator over an in-process cluster instead of one leaf")
	listen := flag.String("listen", ":7070", "listen address")
	cacheBytes := flag.Int64("cache", 64<<20, "result cache bytes")
	parallelism := flag.Int("parallelism", 0, "chunk-scan workers per query (0 = all cores, 1 = sequential)")
	memBudget := flag.Int64("memory-budget", 0, "resident column byte budget (0 = unlimited, columns still load lazily)")
	memPolicy := flag.String("memory-policy", "2q", "column eviction policy: lru, 2q or arc")
	statz := flag.String("statz", "", "HTTP address for the /statz JSON endpoint (disabled when empty; required with -shards)")
	replicas := flag.Int("replicas", 2, "replicas per shard in coordinator mode")
	deadline := flag.Duration("deadline", 10*time.Second, "per-query deadline in coordinator mode (0 = none)")
	mixer := flag.String("mixer", "", `child address sets ("a,b;c,d"): run as a mixer node over them instead of serving a store`)
	connect := flag.String("connect", "", `remote node address sets ("a,b;c,d"): run as a coordinator over leaf/mixer processes`)
	scrubInterval := flag.Duration("scrub-interval", 0, "background scrub cadence for the leaf's store (0 = off)")
	flag.Parse()
	if *mixer != "" {
		if err := runMixer(*mixer, *listen, *statz, *deadline); err != nil {
			fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *connect != "" {
		if err := runConnect(*connect, *statz, *deadline); err != nil {
			fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shards != "" {
		if err := runCoordinator(strings.Split(*shards, ","), *statz, coordinatorOptions{
			replicas:    *replicas,
			deadline:    *deadline,
			cacheBytes:  *cacheBytes,
			parallelism: *parallelism,
			memBudget:   *memBudget,
			memPolicy:   *memPolicy,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "pdserver: -store or -shards is required")
		os.Exit(2)
	}
	store, _, err := powerdrill.Open(*storeDir, powerdrill.Options{
		ResultCacheBytes:  *cacheBytes,
		Parallelism:       *parallelism,
		MemoryBudgetBytes: *memBudget,
		MemoryPolicy:      *memPolicy,
		ScrubInterval:     *scrubInterval,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
		os.Exit(1)
	}
	budget := "unlimited"
	if *memBudget > 0 {
		budget = fmt.Sprintf("%.1f MB", float64(*memBudget)/1e6)
	}
	fmt.Printf("pdserver: serving %d rows (%d chunks, lazy columns, memory budget %s) on %s\n",
		store.NumRows(), store.NumChunks(), budget, l.Addr())
	var statzSrv *http.Server
	if *statz != "" {
		statzSrv = &http.Server{Addr: *statz, Handler: statzMux(store)}
		go func() {
			if err := statzSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "pdserver: statz: %v\n", err)
			}
		}()
		fmt.Printf("pdserver: /statz on %s\n", *statz)
	}

	// SIGTERM/SIGINT triggers a graceful shutdown: stop accepting, drain
	// in-flight HTTP requests, then flush the write buffer so every
	// acknowledged append is sealed durably before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- powerdrill.ServeShard(l, store) }()
	select {
	case err := <-serveErr:
		_ = store.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdserver: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Println("pdserver: signal received; draining, flushing, closing")
		if err := shutdownLeaf(l, statzSrv, store, serveErr); err != nil {
			fmt.Fprintf(os.Stderr, "pdserver: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}

// shutdownLeaf runs the graceful-shutdown sequence: close the RPC
// listener (new connections refused, the serve loop exits), drain the
// observability server's in-flight requests, then Flush — sealing every
// buffered row into a committed segment — and Close the store. After it
// returns, every acknowledged append is durable and the process can
// exit or be killed safely.
func shutdownLeaf(l net.Listener, statzSrv *http.Server, store *powerdrill.Store, serveErr <-chan error) error {
	_ = l.Close()
	if statzSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = statzSrv.Shutdown(sctx)
		cancel()
	}
	if serveErr != nil {
		<-serveErr // the RPC accept loop has exited
	}
	if err := store.Flush(); err != nil {
		_ = store.Close()
		return err
	}
	return store.Close()
}

type coordinatorOptions struct {
	replicas    int
	deadline    time.Duration
	cacheBytes  int64
	parallelism int
	memBudget   int64
	memPolicy   string
}

// runCoordinator opens the shard directories as an in-process cluster and
// serves /query and /statz (cluster health included) on the statz address.
func runCoordinator(dirs []string, statzAddr string, o coordinatorOptions) error {
	if statzAddr == "" {
		return fmt.Errorf("coordinator mode needs -statz (it serves /query and /statz over HTTP)")
	}
	c, err := powerdrill.OpenCluster(dirs, powerdrill.ClusterOptions{
		Replicas: o.replicas,
		Deadline: o.deadline,
		Store: powerdrill.Options{
			ResultCacheBytes:  o.cacheBytes,
			Parallelism:       o.parallelism,
			MemoryBudgetBytes: o.memBudget,
			MemoryPolicy:      o.memPolicy,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("pdserver: coordinating %d shards x %d replicas (deadline %v); /query and /statz on %s\n",
		len(dirs), o.replicas, o.deadline, statzAddr)
	return serveCoordinatorStatz(statzAddr, c)
}

// parseAddrSets parses "a,b;c,d" into address sets: ';' separates child
// subtrees, ',' separates a subtree's replica addresses.
func parseAddrSets(s string) [][]string {
	var sets [][]string
	for _, grp := range strings.Split(s, ";") {
		var addrs []string
		for _, a := range strings.Split(grp, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) > 0 {
			sets = append(sets, addrs)
		}
	}
	return sets
}

// runMixer serves an inner serving-tree node: the same RPC surface as a
// leaf, answered by fanning out to the child nodes and merging. Children
// that are down at startup join once reachable.
func runMixer(children, listen, statzAddr string, deadline time.Duration) error {
	sets := parseAddrSets(children)
	if len(sets) == 0 {
		return fmt.Errorf("-mixer needs at least one child address set")
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	m := powerdrill.ConnectMixer(l.Addr().String(), sets, powerdrill.ClusterOptions{Deadline: deadline})
	fmt.Printf("pdserver: mixing %d child subtrees (deadline %v) on %s\n",
		len(sets), deadline, l.Addr())
	if statzAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/statz", mixerStatzHandler(m))
			if err := http.ListenAndServe(statzAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "pdserver: statz: %v\n", err)
			}
		}()
		fmt.Printf("pdserver: /statz on %s\n", statzAddr)
	}
	return powerdrill.ServeMixer(l, m)
}

// runConnect serves a coordinator over remote leaf or mixer processes:
// /query and /statz over HTTP, exactly like -shards but with the serving
// tree living in other processes.
func runConnect(addrs, statzAddr string, deadline time.Duration) error {
	if statzAddr == "" {
		return fmt.Errorf("coordinator mode needs -statz (it serves /query and /statz over HTTP)")
	}
	sets := parseAddrSets(addrs)
	if len(sets) == 0 {
		return fmt.Errorf("-connect needs at least one node address set")
	}
	c, err := powerdrill.ConnectCluster(sets, powerdrill.ClusterOptions{Deadline: deadline})
	if err != nil {
		return err
	}
	fmt.Printf("pdserver: coordinating %d remote subtrees (deadline %v); /query and /statz on %s\n",
		len(sets), deadline, statzAddr)
	return serveCoordinatorStatz(statzAddr, c)
}
