package main

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"time"

	"powerdrill"
)

// statzPayload is the JSON shape of the /statz observability endpoint:
// memory-manager accounting, cumulative engine counters, and result-cache
// hit rates for one leaf server.
type statzPayload struct {
	Rows   int `json:"rows"`
	Chunks int `json:"chunks"`

	Memory *memorySection `json:"memory,omitempty"`

	Engine engineSection `json:"engine"`

	ResultCache *cacheSection `json:"result_cache,omitempty"`

	// Ingest is present when the store has an active append path: the
	// committed generation, live segments and buffer state.
	Ingest *ingestSection `json:"ingest,omitempty"`

	// LastScrub is present once a background scrub pass (-scrub-interval)
	// has completed: when it ran, what it covered, and the verdicts.
	LastScrub *scrubSection `json:"last_scrub,omitempty"`

	// Cluster is present in coordinator mode (-shards, -connect) and mixer
	// mode (-mixer): fan-out counters plus per-child health.
	Cluster *clusterSection `json:"cluster,omitempty"`
}

// scrubSection mirrors powerdrill.ScrubStatus: the most recent background
// scrub pass over the leaf's store files.
type scrubSection struct {
	Time      string   `json:"time"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Files     int      `json:"files"`
	Records   int      `json:"records"`
	Corrupt   int      `json:"corrupt"`
	Failures  []string `json:"failures,omitempty"`
	Err       string   `json:"err,omitempty"`
}

// ingestSection mirrors powerdrill.IngestStats.
type ingestSection struct {
	Gen               int   `json:"gen"`
	Segments          int   `json:"segments"`
	SegmentRows       int64 `json:"segment_rows"`
	MemRows           int   `json:"mem_rows"`
	SealingRows       int64 `json:"sealing_rows"`
	MemBytes          int64 `json:"mem_bytes"`
	RowsAppended      int64 `json:"rows_appended"`
	Seals             int64 `json:"seals"`
	Compactions       int64 `json:"compactions"`
	SegmentsCompacted int64 `json:"segments_compacted"`
	SegmentsRetired   int64 `json:"segments_retired"`
}

// clusterSection mirrors powerdrill.ClusterStats plus per-leaf health —
// the coordinator's view of the serving tree.
type clusterSection struct {
	Queries         int64 `json:"queries"`
	SubQueries      int64 `json:"sub_queries"`
	ReplicaRaces    int64 `json:"replica_races"`
	PrimaryFailures int64 `json:"primary_failures"`
	Hedges          int64 `json:"hedges"`
	Retries         int64 `json:"retries"`
	DeadlineExpired int64 `json:"deadline_expired"`
	ShardsMissing   int64 `json:"shards_missing"`
	PartialAnswers  int64 `json:"partial_answers"`
	BreakerOpens    int64 `json:"breaker_opens"`
	BreakerSkips    int64 `json:"breaker_skips"`
	Rebalances      int64 `json:"rebalances"`
	ReplicasMoved   int64 `json:"replicas_moved"`

	Leaves []leafHealthSection `json:"leaves"`

	// Placement is the shard→server placement table (coordinators only).
	Placement []placementSection `json:"placement,omitempty"`
}

type leafHealthSection struct {
	Name    string `json:"name"`
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	// Server is the placement label of the server the replica lives on.
	Server string `json:"server,omitempty"`
	// Breaker is "closed", "open", "half-open" or "disabled".
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	BreakerOpens        int64  `json:"breaker_opens"`
	// LatencyEWMAMS is the replica's moving completed-attempt latency in
	// milliseconds — the rebalancer's signal.
	LatencyEWMAMS float64 `json:"latency_ewma_ms"`
	LastError     string  `json:"last_error,omitempty"`
}

// placementSection is one row of the shard→server placement table.
type placementSection struct {
	Shard         int     `json:"shard"`
	Replica       int     `json:"replica"`
	Server        string  `json:"server"`
	Leaf          string  `json:"leaf"`
	LatencyEWMAMS float64 `json:"latency_ewma_ms"`
	Breaker       string  `json:"breaker"`
}

// dispatchStatz renders one node's fan-out counters and per-child health —
// the shape is identical for a coordinator and a mixer, because they run
// the same dispatcher.
func dispatchStatz(st powerdrill.ClusterStats, health []powerdrill.LeafHealth) *clusterSection {
	s := &clusterSection{
		Queries:         st.Queries,
		SubQueries:      st.SubQueries,
		ReplicaRaces:    st.ReplicaRaces,
		PrimaryFailures: st.PrimaryFailures,
		Hedges:          st.Hedges,
		Retries:         st.Retries,
		DeadlineExpired: st.DeadlineExpired,
		ShardsMissing:   st.ShardsMissing,
		PartialAnswers:  st.PartialAnswers,
		BreakerOpens:    st.BreakerOpens,
		BreakerSkips:    st.BreakerSkips,
		Rebalances:      st.Rebalances,
		ReplicasMoved:   st.ReplicasMoved,
	}
	for _, h := range health {
		s.Leaves = append(s.Leaves, leafHealthSection{
			Name:                h.Name,
			Shard:               h.Shard,
			Replica:             h.Replica,
			Server:              h.Server,
			Breaker:             h.Breaker,
			ConsecutiveFailures: h.ConsecutiveFailures,
			Successes:           h.Successes,
			Failures:            h.Failures,
			BreakerOpens:        h.BreakerOpens,
			LatencyEWMAMS:       float64(h.LatencyEWMA) / 1e6,
			LastError:           h.LastError,
		})
	}
	return s
}

// clusterStatz snapshots a coordinator's stats, leaf health and placement.
func clusterStatz(c *powerdrill.Cluster) *clusterSection {
	s := dispatchStatz(c.Stats(), c.Health())
	for _, e := range c.Placement() {
		s.Placement = append(s.Placement, placementSection{
			Shard:         e.Shard,
			Replica:       e.Replica,
			Server:        e.Server,
			Leaf:          e.Leaf,
			LatencyEWMAMS: float64(e.LatencyEWMA) / 1e6,
			Breaker:       e.Breaker,
		})
	}
	return s
}

// mixerStatzHandler serves a mixer node's runtime counters: its own
// fan-out statistics and its view of its children's health.
func mixerStatzHandler(m *powerdrill.Mixer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := statzPayload{Cluster: dispatchStatz(m.Stats(), m.Health())}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&p)
	})
}

type memorySection struct {
	BudgetBytes   int64 `json:"budget_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	PinnedBytes   int64 `json:"pinned_bytes"`
	// ResidentItems counts resident manager entries. On a chunk-granular
	// store an entry is one (column, chunk) pair or one dictionary; on
	// stores saved before the chunk layout, one whole column.
	ResidentItems int `json:"resident_items"`
	// VirtualBytes is the portion of ResidentBytes held by materialized
	// virtual columns — budgeted sidecar-backed entries plus any
	// unevictable in-registry fallbacks.
	VirtualBytes    int64   `json:"virtual_bytes"`
	ColdLoads       int64   `json:"cold_loads"`
	ColdBytesLoaded int64   `json:"cold_bytes_loaded"`
	DiskBytesRead   int64   `json:"disk_bytes_read"`
	Evictions       int64   `json:"evictions"`
	EvictedBytes    int64   `json:"evicted_bytes"`
	HitRate         float64 `json:"hit_rate"`
	Policy          string  `json:"policy"`
}

type engineSection struct {
	Queries       int64 `json:"queries"`
	ChunksSkipped int64 `json:"chunks_skipped"`
	ChunksCached  int64 `json:"chunks_cached"`
	ChunksScanned int64 `json:"chunks_scanned"`
	CellsScanned  int64 `json:"cells_scanned"`
	// ActiveChunks/SkippedChunks split every query's chunks by the
	// pre-scan residency analysis: only active chunks are ever loaded
	// (and charged to the budget) on a chunk-granular store.
	ActiveChunks  int64 `json:"active_chunks"`
	SkippedChunks int64 `json:"skipped_chunks"`
	// BloomSkippedChunks counts skipped chunks only the per-chunk Bloom
	// filters could rule out — chunks whose [min, max] span admitted the
	// restriction but whose id set provably did not contain it.
	BloomSkippedChunks int64 `json:"bloom_skipped_chunks"`
	// KernelChunks/ScalarChunks split aggregated chunks by execution path:
	// vectorized kernels versus the scalar reference loop (DisableKernels).
	KernelChunks    int64 `json:"kernel_chunks"`
	ScalarChunks    int64 `json:"scalar_chunks"`
	ColdLoads       int64 `json:"cold_loads"`
	ColdChunkLoads  int64 `json:"cold_chunk_loads"`
	ColdDictLoads   int64 `json:"cold_dict_loads"`
	ColdBytesLoaded int64 `json:"cold_bytes_loaded"`
	DiskBytesRead   int64 `json:"disk_bytes_read"`
	// CacheSkippedChunks counts chunks answered from the result cache by
	// the cache-aware residency pass — never pinned, loaded, or charged to
	// the memory budget.
	CacheSkippedChunks int64 `json:"cache_skipped_chunks"`
	// ReadRuns/CoalescedReads describe cold-read batching: contiguous cold
	// chunks are served by one ReadAt per run instead of one per chunk.
	ReadRuns       int64 `json:"read_runs"`
	CoalescedReads int64 `json:"coalesced_reads"`
	// ChecksumVerified/ChecksumFailed count cold loads that passed /
	// failed CRC32C verification (format v5 stores). A nonzero failure
	// count means the storage layer caught corruption before it could
	// reach a result.
	ChecksumVerified int64 `json:"checksum_verified"`
	ChecksumFailed   int64 `json:"checksum_failed"`
}

type cacheSection struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// statzHandler serves the leaf's runtime counters as JSON.
func statzHandler(store *powerdrill.Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		es := store.EngineStats()
		p := statzPayload{
			Rows:   store.NumRows(),
			Chunks: store.NumChunks(),
			Engine: engineSection{
				Queries:            es.Queries,
				ChunksSkipped:      es.ChunksSkipped,
				ChunksCached:       es.ChunksCached,
				ChunksScanned:      es.ChunksScanned,
				CellsScanned:       es.CellsScanned,
				ActiveChunks:       es.ActiveChunks,
				SkippedChunks:      es.SkippedChunks,
				BloomSkippedChunks: es.BloomSkippedChunks,
				KernelChunks:       es.KernelChunks,
				ScalarChunks:       es.ScalarChunks,
				ColdLoads:          es.ColdLoads,
				ColdChunkLoads:     es.ColdChunkLoads,
				ColdDictLoads:      es.ColdDictLoads,
				ColdBytesLoaded:    es.ColdBytesLoaded,
				DiskBytesRead:      es.DiskBytesRead,
				CacheSkippedChunks: es.CacheSkippedChunks,
				ReadRuns:           es.ReadRuns,
				CoalescedReads:     es.CoalescedReads,
				ChecksumVerified:   es.ChecksumVerified,
				ChecksumFailed:     es.ChecksumFailed,
			},
		}
		if ms, ok := store.MemStats(); ok {
			p.Memory = &memorySection{
				BudgetBytes:     ms.BudgetBytes,
				ResidentBytes:   ms.ResidentBytes,
				PinnedBytes:     ms.PinnedBytes,
				ResidentItems:   ms.ResidentItems,
				VirtualBytes:    ms.VirtualBytes,
				ColdLoads:       ms.ColdLoads,
				ColdBytesLoaded: ms.ColdBytesLoaded,
				DiskBytesRead:   ms.DiskBytesRead,
				Evictions:       ms.Evictions,
				EvictedBytes:    ms.EvictedBytes,
				HitRate:         ms.HitRate(),
				Policy:          ms.Policy,
			}
		}
		if cs, ok := store.ResultCacheStats(); ok {
			p.ResultCache = &cacheSection{
				Hits:      cs.Hits,
				Misses:    cs.Misses,
				Evictions: cs.Evictions,
				HitRate:   cs.HitRate(),
			}
		}
		if ss, ok := store.LastScrub(); ok {
			p.LastScrub = &scrubSection{
				Time:      ss.Time.Format(time.RFC3339),
				ElapsedMS: float64(ss.Elapsed) / 1e6,
				Files:     ss.Files,
				Records:   ss.Records,
				Corrupt:   ss.Corrupt,
				Failures:  ss.Failures,
				Err:       ss.Err,
			}
		}
		if is, ok := store.IngestStats(); ok {
			p.Ingest = &ingestSection{
				Gen:               is.Gen,
				Segments:          is.Segments,
				SegmentRows:       is.SegmentRows,
				MemRows:           is.MemRows,
				SealingRows:       is.SealingRows,
				MemBytes:          is.MemBytes,
				RowsAppended:      is.RowsAppended,
				Seals:             is.Seals,
				Compactions:       is.Compactions,
				SegmentsCompacted: is.SegmentsCompacted,
				SegmentsRetired:   is.SegmentsRetired,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&p)
	})
}

// ingestRequest is the JSON body of POST /ingest: a columnar batch, one
// entry per store column, all the same length.
type ingestRequest struct {
	Columns []ingestColumn `json:"columns"`
}

type ingestColumn struct {
	Name string `json:"name"`
	// Kind is "string", "int64" or "float64"; exactly one of the value
	// arrays must be set accordingly.
	Kind   string    `json:"kind"`
	Strs   []string  `json:"strs,omitempty"`
	Ints   []int64   `json:"ints,omitempty"`
	Floats []float64 `json:"floats,omitempty"`
}

// ingestHandler appends a POSTed batch through the store's streaming
// ingestion path; the rows are visible to queries as soon as the request
// returns. ?flush=1 additionally seals the write buffer (durability
// barrier).
func ingestHandler(store *powerdrill.Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a columnar batch", http.StatusMethodNotAllowed)
			return
		}
		var req ingestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tbl := powerdrill.NewTable("data")
		rows := -1
		for _, c := range req.Columns {
			var n int
			switch c.Kind {
			case "string":
				tbl.AddStringColumn(c.Name, c.Strs)
				n = len(c.Strs)
			case "int64":
				tbl.AddInt64Column(c.Name, c.Ints)
				n = len(c.Ints)
			case "float64":
				tbl.AddFloat64Column(c.Name, c.Floats)
				n = len(c.Floats)
			default:
				http.Error(w, "column "+c.Name+": kind must be string, int64 or float64", http.StatusBadRequest)
				return
			}
			if rows >= 0 && n != rows {
				http.Error(w, "ragged batch: columns differ in length", http.StatusBadRequest)
				return
			}
			rows = n
		}
		if err := store.Append(tbl); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if r.URL.Query().Get("flush") != "" {
			if err := store.Flush(); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{
			"appended": rows,
			"rows":     store.NumRows(),
		})
	})
}

// statzMux routes the leaf observability endpoints: /statz counters and
// /ingest streaming appends.
func statzMux(store *powerdrill.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/statz", statzHandler(store))
	mux.Handle("/ingest", ingestHandler(store))
	return mux
}

// coordinatorStatzHandler serves the coordinator's runtime counters:
// cluster fan-out stats, per-leaf breaker health, and the shared memory
// manager's accounting.
func coordinatorStatzHandler(c *powerdrill.Cluster) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := statzPayload{Cluster: clusterStatz(c)}
		if ms, ok := c.MemStats(); ok {
			p.Memory = &memorySection{
				BudgetBytes:     ms.BudgetBytes,
				ResidentBytes:   ms.ResidentBytes,
				PinnedBytes:     ms.PinnedBytes,
				ResidentItems:   ms.ResidentItems,
				VirtualBytes:    ms.VirtualBytes,
				ColdLoads:       ms.ColdLoads,
				ColdBytesLoaded: ms.ColdBytesLoaded,
				DiskBytesRead:   ms.DiskBytesRead,
				Evictions:       ms.Evictions,
				EvictedBytes:    ms.EvictedBytes,
				HitRate:         ms.HitRate(),
				Policy:          ms.Policy,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&p)
	})
}

// queryResponse is the JSON shape of the coordinator's /query endpoint.
type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Coverage is the fraction of rows the answer spans; < 1 marks a
	// partial answer served because shards were unreachable.
	Coverage      float64 `json:"coverage"`
	ShardsMissing int     `json:"shards_missing"`
}

// queryHandler answers GET /query?q=SQL against the cluster.
func queryHandler(c *powerdrill.Cluster) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			// net/url rejects a literal ';' anywhere in the query string,
			// silently dropping the pair that contains it — and SQL ends in
			// one. Retry with semicolons escaped so a hand-typed curl works.
			if vs, err := url.ParseQuery(strings.ReplaceAll(r.URL.RawQuery, ";", "%3B")); err == nil {
				q = vs.Get("q")
			}
		}
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		res, err := c.QueryContext(r.Context(), q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		resp := queryResponse{
			Columns:       res.Columns,
			Coverage:      res.Coverage,
			ShardsMissing: res.Stats.ShardsMissing,
			Rows:          make([][]string, 0, len(res.Rows)),
		}
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			resp.Rows = append(resp.Rows, cells)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&resp)
	})
}

// serveCoordinatorStatz starts the coordinator observability listener.
func serveCoordinatorStatz(addr string, c *powerdrill.Cluster) error {
	mux := http.NewServeMux()
	mux.Handle("/statz", coordinatorStatzHandler(c))
	mux.Handle("/query", queryHandler(c))
	return http.ListenAndServe(addr, mux)
}
