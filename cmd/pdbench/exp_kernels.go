package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/dict"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/table"
)

// runKernels measures the vectorized scan kernels against the scalar
// reference path on a controlled-selectivity dataset, then demonstrates the
// v4 metadata pruning (per-chunk Bloom filters, sub-framed sharded
// dictionaries) on a cold lazy open. Results land in BENCH_kernels.json.
//
// The dataset plants needle values in an unsorted high-cardinality string
// column at known row fractions, so the selectivity sweep is exact: an
// equality restriction on a needle selects 0.1%, 1% or 10% of the rows, and
// the unrestricted query is the 100% point. A separate ultra-rare needle
// lives only in the first chunk — the case the chunk [min, max] spans can
// never prune (the column is unsorted, every span admits the value) but the
// per-chunk Bloom filters prove absent everywhere else.
func runKernels(cfg config) error {
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	tbl := kernelsTable(cfg.rows, cfg.seed, chunk)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"shard"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
	})
	if err != nil {
		return err
	}

	sweep := []struct {
		label       string
		selectivity float64
		where       string
	}{
		{"0.001", 0.001, `WHERE tag = "needle_0001"`},
		{"0.01", 0.01, `WHERE tag = "needle_001"`},
		{"0.1", 0.1, `WHERE tag = "needle_01"`},
		{"1.0", 1.0, ``},
	}
	const chart = `SELECT grp, COUNT(*) AS c, SUM(metric) AS s FROM data %s GROUP BY grp ORDER BY c DESC LIMIT 20;`

	scalar := exec.New(store, exec.Options{Parallelism: cfg.parallelism, DisableKernels: true})
	kernel := exec.New(store, exec.Options{Parallelism: cfg.parallelism})

	measure := func(e *exec.Engine, where string) (float64, error) {
		q := fmt.Sprintf(chart, where)
		if _, err := e.Query(q); err != nil { // warm-up, untimed
			return 0, err
		}
		best := time.Duration(0)
		for rep := 0; rep < cfg.reps; rep++ {
			start := time.Now()
			if _, err := e.Query(q); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return float64(cfg.rows) / best.Seconds(), nil
	}

	rep := kernelsReport{Rows: cfg.rows, Chunks: store.NumChunks()}
	fmt.Println("selectivity sweep (equality on unsorted high-cardinality column):")
	row("selectivity", "scalar Mrows/s", "kernel Mrows/s", "speedup")
	for _, pt := range sweep {
		// Identical results are asserted before anything is timed.
		sres, err := scalar.Query(fmt.Sprintf(chart, pt.where))
		if err != nil {
			return err
		}
		kres, err := kernel.Query(fmt.Sprintf(chart, pt.where))
		if err != nil {
			return err
		}
		if fmt.Sprint(sres.Rows) != fmt.Sprint(kres.Rows) {
			return fmt.Errorf("kernels diverge from scalar path at selectivity %s", pt.label)
		}
		sRate, err := measure(scalar, pt.where)
		if err != nil {
			return err
		}
		kRate, err := measure(kernel, pt.where)
		if err != nil {
			return err
		}
		rep.Sweep = append(rep.Sweep, kernelsPoint{
			Selectivity:      pt.selectivity,
			ScalarRowsPerSec: sRate,
			KernelRowsPerSec: kRate,
			Speedup:          kRate / sRate,
		})
		row(pt.label,
			fmt.Sprintf("%.1f", sRate/1e6),
			fmt.Sprintf("%.1f", kRate/1e6),
			fmt.Sprintf("%.2fx", kRate/sRate))
	}

	// Cold-open pruning demo: save uncompressed (v4: chunk Blooms + dict
	// sub-frames), reopen lazily, and run the ultra-rare needle equality.
	dir, err := os.MkdirTemp("", "pdbench-kernels-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	shardedStore, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"shard"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
		StringDict:       colstore.StringDictSharded,
	})
	if err != nil {
		return err
	}
	if err := colstore.Save(shardedStore, dir, ""); err != nil {
		return err
	}
	lazy, _, err := colstore.OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		return err
	}
	engine := exec.New(lazy, exec.Options{Parallelism: cfg.parallelism})
	start := time.Now()
	res, err := engine.Query(`SELECT grp, COUNT(*) AS c FROM data WHERE tag = "needle_rare" GROUP BY grp ORDER BY c DESC LIMIT 20;`)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	rep.BloomSkippedChunks = res.Stats.BloomSkippedChunks
	rep.BloomActiveChunks = res.Stats.ActiveChunks
	rep.ColdNeedleDiskMB = float64(res.Stats.DiskBytesRead) / 1e6
	rep.ColdNeedleMillis = elapsed.Milliseconds()
	fmt.Printf("\ncold needle query (v4 lazy store): %d/%d chunks active, %d pruned by blooms alone, %.2f MB from disk in %v\n",
		res.Stats.ActiveChunks, lazy.NumChunks(), res.Stats.BloomSkippedChunks,
		float64(res.Stats.DiskBytesRead)/1e6, elapsed.Round(time.Millisecond))
	ps := lazy.NewPinSet()
	if view, err := ps.ColumnDict("tag"); err == nil {
		if sd, ok := view.Dict.(*dict.Sharded); ok {
			rep.DictShards = sd.Shards()
			rep.DictShardsLoaded = int(sd.Loads())
			fmt.Printf("dictionary sub-framing: %d/%d shards loaded for the point probe\n",
				rep.DictShardsLoaded, rep.DictShards)
		}
	}
	ps.Release()

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_kernels.json", blob, 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_kernels.json")
	return nil
}

// kernelsReport is the JSON written to BENCH_kernels.json.
type kernelsReport struct {
	Rows               int            `json:"rows"`
	Chunks             int            `json:"chunks"`
	Sweep              []kernelsPoint `json:"selectivity_sweep"`
	BloomSkippedChunks int            `json:"bloom_skipped_chunks"`
	BloomActiveChunks  int            `json:"bloom_active_chunks"`
	ColdNeedleDiskMB   float64        `json:"cold_needle_disk_mb"`
	ColdNeedleMillis   int64          `json:"cold_needle_millis"`
	DictShards         int            `json:"dict_shards"`
	DictShardsLoaded   int            `json:"dict_shards_loaded"`
}

// kernelsPoint is one selectivity of the scalar-vs-kernel sweep.
type kernelsPoint struct {
	Selectivity      float64 `json:"selectivity"`
	ScalarRowsPerSec float64 `json:"scalar_rows_per_sec"`
	KernelRowsPerSec float64 `json:"kernel_rows_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// kernelsTable builds the controlled-selectivity dataset: a small group
// domain, an int metric, and an unsorted high-cardinality tag column with
// needles planted at exact row fractions (disjoint residue classes) plus an
// ultra-rare needle confined to the first rows so it occurs in one chunk.
// The shard column is monotone in the row index, so partitioning by it
// splits the store into ~100 chunks while preserving row order — and the
// ultra-rare needle stays confined to the first chunk.
func kernelsTable(rows int, seed int64, chunk int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	grp := make([]string, rows)
	metric := make([]int64, rows)
	tag := make([]string, rows)
	shard := make([]string, rows)
	for i := 0; i < rows; i++ {
		grp[i] = fmt.Sprintf("g%02d", rng.Intn(16))
		metric[i] = int64(rng.Intn(1000))
		shard[i] = fmt.Sprintf("s%03d", i/chunk)
		switch {
		case i < 8:
			tag[i] = "needle_rare"
		case i%10 == 5:
			tag[i] = "needle_01"
		case i%100 == 1:
			tag[i] = "needle_001"
		case i%1000 == 3:
			tag[i] = "needle_0001"
		default:
			tag[i] = fmt.Sprintf("t%05d", rng.Intn(20000))
		}
	}
	return table.New("data").
		AddStringColumn("grp", grp).
		AddInt64Column("metric", metric).
		AddStringColumn("tag", tag).
		AddStringColumn("shard", shard)
}
