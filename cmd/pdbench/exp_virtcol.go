package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
)

// runVirtCol measures budget-aware virtual columns: expressions
// materialized at query time are persisted into the store's virtual/
// sidecar and join the byte budget like physical data. Per budget the
// sweep runs three passes over an expression-heavy chart set (a virtual
// group-by field, a composite multi-column group-by, a restriction on a
// virtual field):
//
//   - materialize: first touch — expressions are evaluated, persisted,
//     and budgeted (evicting cold chunks to make room);
//   - warm: repeat — virtual chunks come from RAM or reload from the
//     sidecar, never from a re-materialization scan;
//   - reopen: a fresh store on the same directory — the sidecar serves
//     the columns of the previous "session", and the restricted chart
//     prunes chunks from the sidecar's value spans (skipped > 0).
func runVirtCol(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
		Reorder:          true,
	})
	if err != nil {
		return err
	}
	var footprint int64
	for _, name := range store.Columns() {
		col, err := store.ColumnErr(name)
		if err != nil {
			return err
		}
		footprint += col.Memory().Total()
	}
	base, err := os.MkdirTemp("", "pdbench-virtcol-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	charts := []string{
		`SELECT date(timestamp) AS d, COUNT(*) AS c FROM data GROUP BY d ORDER BY d ASC LIMIT 20;`,
		`SELECT country, table_name, COUNT(*) AS c FROM data GROUP BY country, table_name ORDER BY c DESC, country ASC, table_name ASC LIMIT 20;`,
		`SELECT table_name, SUM(latency) AS s FROM data WHERE upper(country) = "DE" GROUP BY table_name ORDER BY s DESC, table_name ASC LIMIT 10;`,
	}
	runCharts := func(engine *exec.Engine) (elapsed time.Duration, skipped int64, err error) {
		start := time.Now()
		for _, chart := range charts {
			res, err := engine.Query(chart)
			if err != nil {
				return 0, 0, err
			}
			skipped += int64(res.Stats.SkippedChunks)
		}
		return time.Since(start), skipped, nil
	}

	budgets := []int64{0, footprint / 4, footprint / 10}
	if cfg.memoryBudget > 0 {
		budgets = []int64{cfg.memoryBudget}
	}
	fmt.Printf("store: %.2f MB resident, %d chunks; 3 expression charts per pass\n\n",
		float64(footprint)/1e6, store.NumChunks())
	row("budget", "virtual MB", "resident MB", "evictions", "skipped", "materialize", "warm", "reopen")
	for i, budget := range budgets {
		dir := filepath.Join(base, fmt.Sprintf("store-%d", i))
		if err := colstore.Save(store, dir, "zippy"); err != nil {
			return err
		}
		mgr := memmgr.New(budget, "2q")
		lazy, _, err := colstore.OpenLazy(dir, mgr)
		if err != nil {
			return err
		}
		engine := exec.New(lazy, exec.Options{Parallelism: cfg.parallelism})
		matElapsed, _, err := runCharts(engine)
		if err != nil {
			return err
		}
		warmElapsed, _, err := runCharts(engine)
		if err != nil {
			return err
		}
		ms := mgr.Stats()
		_ = lazy.Close()

		// A fresh "session" on the same directory: virtual columns come
		// from the sidecar, and the restricted chart prunes on their spans.
		mgr2 := memmgr.New(budget, "2q")
		reopened, _, err := colstore.OpenLazy(dir, mgr2)
		if err != nil {
			return err
		}
		engine2 := exec.New(reopened, exec.Options{Parallelism: cfg.parallelism})
		reopenElapsed, skipped, err := runCharts(engine2)
		if err != nil {
			return err
		}
		_ = reopened.Close()

		label := "unlimited"
		if budget > 0 {
			label = fmt.Sprintf("%.0f%%", 100*float64(budget)/float64(footprint))
		}
		row(label,
			mb(ms.VirtualBytes),
			mb(ms.ResidentBytes),
			fmt.Sprint(ms.Evictions),
			fmt.Sprint(skipped),
			matElapsed.Round(time.Millisecond).String(),
			warmElapsed.Round(time.Millisecond).String(),
			reopenElapsed.Round(time.Millisecond).String())
	}
	fmt.Println("\nmaterializations persist into the store's virtual/ sidecar: they are evicted")
	fmt.Println("and reloaded under the budget like physical chunks, survive a reopen without")
	fmt.Println("re-materializing, and their recorded spans prune restricted queries (skipped)")
	return nil
}
