package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"powerdrill/internal/backends"
	"powerdrill/internal/colstore"
	"powerdrill/internal/compress"
	"powerdrill/internal/exec"
	"powerdrill/internal/reorder"
	"powerdrill/internal/table"
	"powerdrill/internal/workload"
)

// The three queries of Section 2.5, verbatim.
var (
	query1 = `SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`
	query2 = `SELECT date(timestamp) as d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 10;`
	query3 = `SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;`
)

var paperQueries = []struct {
	name string
	sql  string
	cols []string // physical columns the query touches
}{
	{"Query 1", query1, []string{"country"}},
	{"Query 2", query2, []string{"timestamp", "latency"}},
	{"Query 3", query3, []string{"table_name"}},
}

// dataset generates (or reuses) the synthetic query logs.
func dataset(cfg config) *table.Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: cfg.rows, Seed: cfg.seed})
}

// variantSpecs are the paper's step-wise layouts, in Table 4 order.
func variantSpecs(cfg config) []struct {
	name string
	opts colstore.Options
} {
	part := []string{"country", "table_name"}
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	if chunk > 50_000 {
		chunk = 50_000 // the paper's threshold
	}
	return []struct {
		name string
		opts colstore.Options
	}{
		{"Basic", colstore.Options{}},
		{"Chunks", colstore.Options{PartitionFields: part, MaxChunkRows: chunk}},
		{"OptCols", colstore.Options{PartitionFields: part, MaxChunkRows: chunk, OptimizeElements: true}},
		{"OptDicts", colstore.Options{PartitionFields: part, MaxChunkRows: chunk, OptimizeElements: true,
			StringDict: colstore.StringDictTrie}},
		{"Reorder", colstore.Options{PartitionFields: part, MaxChunkRows: chunk, OptimizeElements: true,
			StringDict: colstore.StringDictTrie, Reorder: true}},
	}
}

// measure runs fn reps times and returns the average duration.
func measure(reps int, fn func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	var total time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(reps), nil
}

// runTable1 reproduces Table 1: latency and memory for CSV, record-io, the
// Dremel-style columnar baseline, and the Basic data structures.
func runTable1(cfg config) error {
	tbl := dataset(cfg)
	dir, err := os.MkdirTemp("", "pdbench-table1-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Printf("dataset: %d rows; preparing baseline files...\n", cfg.rows)
	csvPath := filepath.Join(dir, "data.csv")
	csvSchema, err := backends.WriteCSV(tbl, csvPath)
	if err != nil {
		return err
	}
	recPath := filepath.Join(dir, "data.rec")
	recSchema, err := backends.WriteRecordIO(tbl, recPath)
	if err != nil {
		return err
	}
	dremel, err := backends.BuildDremel(tbl, filepath.Join(dir, "dremel"), 8192)
	if err != nil {
		return err
	}
	basicStore, err := colstore.FromTable(tbl, colstore.Options{})
	if err != nil {
		return err
	}
	basic := exec.New(basicStore, exec.Options{Parallelism: cfg.parallelism})
	// The paper materializes date(timestamp) before timing Query 2
	// (footnote 4); issue it once so the virtual field exists.
	if _, err := basic.Query(query2); err != nil {
		return err
	}

	baselines := []backends.Backend{
		backends.NewCSV(csvPath, csvSchema),
		backends.NewRecordIO(recPath, recSchema),
		dremel,
	}

	fmt.Println("Latency in ms                          |  Memory in MB")
	row("", "Query 1", "Query 2", "Query 3", "Query 1", "Query 2", "Query 3")
	for _, b := range baselines {
		var lat [3]time.Duration
		var mem [3]int64
		for i, q := range paperQueries {
			avg, err := measure(cfg.reps, func() error {
				_, err := backends.Query(b, q.sql)
				return err
			})
			if err != nil {
				return fmt.Errorf("%s %s: %w", b.Name(), q.name, err)
			}
			lat[i] = avg
			mem[i], err = b.DataBytes(q.cols)
			if err != nil {
				return err
			}
		}
		row(b.Name(),
			ms(lat[0]), ms(lat[1]), ms(lat[2]),
			mb(mem[0]), mb(mem[1]), mb(mem[2]))
	}
	var lat [3]time.Duration
	var mem [3]int64
	for i, q := range paperQueries {
		avg, err := measure(cfg.reps, func() error {
			_, err := basic.Query(q.sql)
			return err
		})
		if err != nil {
			return fmt.Errorf("basic %s: %w", q.name, err)
		}
		lat[i] = avg
		m, err := basicStore.MemoryFor(q.cols...)
		if err != nil {
			return err
		}
		mem[i] = m.Total()
	}
	row("basic",
		ms(lat[0]), ms(lat[1]), ms(lat[2]),
		mb(mem[0]), mb(mem[1]), mb(mem[2]))
	return nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

// runSteps reproduces the Section 3 memory tables: the "Chunks" table,
// Table 2 (optimized elements), the trie paragraph, Table 3 (Zippy on each
// encoding) and Table 4 (the summary).
func runSteps(cfg config) error {
	tbl := dataset(cfg)
	zippy, err := compress.ByName("zippy")
	if err != nil {
		return err
	}

	type stepResult struct {
		name     string
		overall  [3]int64 // per query
		elements [3]int64 // elements + chunk dicts only
		zipped   [3]int64 // compressed overall
	}
	var steps []stepResult

	for _, spec := range variantSpecs(cfg) {
		store, err := colstore.FromTable(tbl, spec.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.name, err)
		}
		var res stepResult
		res.name = spec.name
		for i, q := range paperQueries {
			m, err := store.MemoryFor(q.cols...)
			if err != nil {
				return err
			}
			res.overall[i] = m.Total()
			res.elements[i] = m.Elements + m.ChunkDicts
			var comp int64
			for _, cn := range q.cols {
				col, err := store.ColumnErr(cn)
				if err != nil {
					return err
				}
				comp += col.Compressed(zippy).Total()
			}
			res.zipped[i] = comp
		}
		steps = append(steps, res)
		if spec.name == "OptDicts" {
			// The trie paragraph: dictionary footprint of table_name.
			arrStore, err := colstore.FromTable(tbl, colstore.Options{})
			if err != nil {
				return err
			}
			arrCol, err := arrStore.ColumnErr("table_name")
			if err != nil {
				return err
			}
			trieCol, err := store.ColumnErr("table_name")
			if err != nil {
				return err
			}
			arrDict := arrCol.Dict
			trieDict := trieCol.Dict
			fmt.Printf("trie dictionary (table_name): sorted array %s MB -> trie %s MB (%.1fx)\n\n",
				mb(arrDict.MemoryBytes()), mb(trieDict.MemoryBytes()),
				float64(arrDict.MemoryBytes())/float64(trieDict.MemoryBytes()))
		}
	}

	fmt.Println("Table 2 — elements + chunk-dicts in MB / overall in MB")
	row("", "Q1 elems", "Q2 elems", "Q3 elems", "Q1 all", "Q2 all", "Q3 all")
	for _, s := range steps[:3] { // Basic, Chunks, OptCols as in the paper
		row(s.name,
			mb(s.elements[0]), mb(s.elements[1]), mb(s.elements[2]),
			mb(s.overall[0]), mb(s.overall[1]), mb(s.overall[2]))
	}

	fmt.Println("\nTable 3 — uncompressed vs Zippy-compressed overall MB")
	row("", "Q1 raw", "Q2 raw", "Q3 raw", "Q1 zip", "Q2 zip", "Q3 zip")
	for _, s := range steps[:4] {
		row(s.name,
			mb(s.overall[0]), mb(s.overall[1]), mb(s.overall[2]),
			mb(s.zipped[0]), mb(s.zipped[1]), mb(s.zipped[2]))
	}

	fmt.Println("\nTable 4 — summary of the step-wise optimizations (overall MB;")
	fmt.Println("the Zippy and Reorder rows report the compressed footprint)")
	row("", "Query 1", "Query 2", "Query 3")
	for _, s := range steps {
		switch s.name {
		case "Reorder":
			row("Zippy", mb(steps[3].zipped[0]), mb(steps[3].zipped[1]), mb(steps[3].zipped[2]))
			row("Reorder", mb(s.zipped[0]), mb(s.zipped[1]), mb(s.zipped[2]))
		default:
			row(s.name, mb(s.overall[0]), mb(s.overall[1]), mb(s.overall[2]))
		}
	}
	return nil
}

// runReorder reproduces the Section 3 reordering factors: compression of
// elements + chunk-dictionaries with and without lexicographic reordering.
func runReorder(cfg config) error {
	tbl := dataset(cfg)
	zippy, err := compress.ByName("zippy")
	if err != nil {
		return err
	}
	specs := variantSpecs(cfg)
	noReorder, err := colstore.FromTable(tbl, specs[3].opts) // OptDicts
	if err != nil {
		return err
	}
	reordered, err := colstore.FromTable(tbl, specs[4].opts) // Reorder
	if err != nil {
		return err
	}
	compressedElems := func(s *colstore.Store, cols []string) (int64, error) {
		var total int64
		for _, cn := range cols {
			col, err := s.ColumnErr(cn)
			if err != nil {
				return 0, err
			}
			cb := col.Compressed(zippy)
			total += cb.Elements + cb.ChunkDicts
		}
		return total, nil
	}
	fmt.Println("compressed elements + chunk-dicts in MB (factor = before/after)")
	row("", "before", "after", "factor")
	for _, q := range paperQueries {
		before, err := compressedElems(noReorder, q.cols)
		if err != nil {
			return err
		}
		after, err := compressedElems(reordered, q.cols)
		if err != nil {
			return err
		}
		row(q.name, mb(before), mb(after), fmt.Sprintf("%.2fx", float64(before)/float64(after)))
	}

	// The Hamming cost model behind the factors (Figures 2-4).
	fields := []string{"country", "table_name", "user"}
	costRand := reorder.HammingCost(tbl, fields, reorder.Random(tbl.NumRows(), cfg.seed))
	costId := reorder.HammingCost(tbl, fields, reorder.Identity(tbl.NumRows()))
	costLex := reorder.HammingCost(tbl, fields, reorder.Lexicographic(tbl, fields))
	fmt.Printf("\nHamming path length over (%v):\n", fields)
	fmt.Printf("  random order        %12d\n", costRand)
	fmt.Printf("  original order      %12d\n", costId)
	fmt.Printf("  lexicographic sort  %12d  (%.1fx shorter than random)\n",
		costLex, float64(costRand)/float64(costLex))
	return nil
}
