package main

import (
	"fmt"
	"os"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
)

// runChunkRes measures chunk-granular residency: the Section 5 claim that
// only the *active* portions of the data need RAM, and that composite
// range partitioning makes most chunks provably inactive for a restricted
// query. Two sweeps:
//
//   - selectivity sweep (unlimited budget): the same drill-down charts
//     under progressively narrower restrictions — resident bytes, cold
//     chunk loads and disk traffic should fall with the active-chunk
//     count, not with the column count;
//   - budget sweep (fixed selective restriction): shrinking byte budgets —
//     because only active chunks are ever charged, even a small budget
//     holds a restricted working set with few evictions.
//
// The store is saved uncompressed so per-chunk disk reads are exact byte
// ranges; a codec-compressed store still evicts per chunk but must reread
// the whole column file on each cold chunk.
func runChunkRes(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
		Reorder:          true,
	})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pdbench-chunkres-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := colstore.Save(store, dir, ""); err != nil {
		return err
	}
	var footprint int64
	for _, name := range store.Columns() {
		col, err := store.ColumnErr(name)
		if err != nil {
			return err
		}
		footprint += col.Memory().Total()
	}

	charts := []string{
		`SELECT table_name, COUNT(*) AS v FROM data %s GROUP BY table_name ORDER BY v DESC LIMIT 10;`,
		`SELECT user, COUNT(*) AS v FROM data %s GROUP BY user ORDER BY v DESC LIMIT 10;`,
		`SELECT table_name, SUM(latency) AS v FROM data %s GROUP BY table_name ORDER BY v DESC LIMIT 10;`,
	}
	restrictions := []struct{ label, where string }{
		{"unrestricted", ``},
		{"4 countries", `WHERE country IN ("de", "ch", "us", "jp")`},
		{"2 countries", `WHERE country IN ("de", "ch")`},
		{"1 country", `WHERE country = "de"`},
	}

	fmt.Printf("store: %.2f MB resident across %d chunks; restriction narrows the active set\n\n",
		float64(footprint)/1e6, store.NumChunks())
	fmt.Println("selectivity sweep (unlimited budget, cold open per row):")
	row("restriction", "active", "chunks", "cold chunks", "disk MB", "resident MB", "latency")
	for _, r := range restrictions {
		mgr := memmgr.New(0, "2q")
		lazy, _, err := colstore.OpenLazy(dir, mgr)
		if err != nil {
			return err
		}
		engine := exec.New(lazy, exec.Options{Parallelism: cfg.parallelism})
		start := time.Now()
		for _, chart := range charts {
			if _, err := engine.Query(fmt.Sprintf(chart, r.where)); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		es := engine.Stats()
		ms := mgr.Stats()
		row(r.label,
			fmt.Sprint(es.ActiveChunks/int64(len(charts))),
			fmt.Sprint(lazy.NumChunks()),
			fmt.Sprint(es.ColdChunkLoads),
			mb(es.DiskBytesRead),
			mb(ms.ResidentBytes),
			elapsed.Round(time.Millisecond).String())
	}

	fmt.Println("\nbudget sweep (restriction fixed to 1 country, cold then warm pass):")
	budgets := []int64{0, footprint / 4, footprint / 10, footprint / 20}
	if cfg.memoryBudget > 0 {
		budgets = []int64{cfg.memoryBudget}
	}
	row("budget", "cold chunks", "disk MB", "evictions", "resident MB", "cold pass", "warm pass")
	for _, budget := range budgets {
		mgr := memmgr.New(budget, "2q")
		lazy, _, err := colstore.OpenLazy(dir, mgr)
		if err != nil {
			return err
		}
		engine := exec.New(lazy, exec.Options{Parallelism: cfg.parallelism})
		replay := func() (time.Duration, error) {
			start := time.Now()
			for _, chart := range charts {
				if _, err := engine.Query(fmt.Sprintf(chart, `WHERE country = "de"`)); err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
		coldElapsed, err := replay()
		if err != nil {
			return err
		}
		warmElapsed, err := replay()
		if err != nil {
			return err
		}
		es := engine.Stats()
		ms := mgr.Stats()
		label := "unlimited"
		if budget > 0 {
			label = fmt.Sprintf("%.0f%%", 100*float64(budget)/float64(footprint))
		}
		row(label,
			fmt.Sprint(es.ColdChunkLoads),
			mb(es.DiskBytesRead),
			fmt.Sprint(ms.Evictions),
			mb(ms.ResidentBytes),
			coldElapsed.Round(time.Millisecond).String(),
			warmElapsed.Round(time.Millisecond).String())
	}
	fmt.Println("\nonly active chunks are loaded and charged to the budget, so resident bytes")
	fmt.Println("track restriction selectivity — the Section 5 economics at chunk granularity")
	return nil
}
