package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"powerdrill"
)

// ingestReport is the machine-readable result of the ingest experiment,
// written to BENCH_ingest.json.
type ingestReport struct {
	BaseRows     int     `json:"base_rows"`
	AppendedRows int     `json:"appended_rows"`
	AppendRate   float64 `json:"append_rows_per_sec"`

	QueriesDuringAppend int   `json:"queries_during_append"`
	QueryP50Micros      int64 `json:"query_p50_micros"`
	QueryP99Micros      int64 `json:"query_p99_micros"`
	ConsistencyOK       bool  `json:"consistency_ok"`

	Seals                 int64 `json:"seals"`
	SegmentsBeforeCompact int   `json:"segments_before_compact"`
	SegmentsAfterCompact  int   `json:"segments_after_compact"`
	ResidentBeforeCompact int64 `json:"resident_bytes_before_compact"`
	ResidentAfterCompact  int64 `json:"resident_bytes_after_compact"`
	GenBeforeCompact      int   `json:"gen_before_compact"`
	GenAfterCompact       int   `json:"gen_after_compact"`
}

// runIngest measures the streaming append path: half the dataset is
// imported in bulk, the other half streamed through Append while
// concurrent queries snapshot the store. Every query's COUNT(*) must
// equal its snapshot's row accounting and grow monotonically — the cut
// is always a consistent prefix of the append stream — and compaction
// must shrink both the generation's segment count and the resident
// footprint. Results land in BENCH_ingest.json.
func runIngest(cfg config) error {
	tbl := dataset(cfg)
	half := cfg.rows / 2
	baseRows := make([]int, half)
	for i := range baseRows {
		baseRows[i] = i
	}
	opts := powerdrill.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     maxInt(cfg.rows/100, 1000),
		OptimizeElements: true,
		Reorder:          true,
		Parallelism:      cfg.parallelism,
		// ~10 seals over the streamed half.
		IngestSealRows: maxInt(half/10, 1000),
		// Manual compaction only, so the before/after comparison is
		// deterministic.
		IngestCompactMinSegments: 1 << 30,
	}
	built, err := powerdrill.Build(tbl.Select(baseRows), opts)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pdbench-ingest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := built.Save(dir, "zippy"); err != nil {
		return err
	}
	store, _, err := powerdrill.Open(dir, opts)
	if err != nil {
		return err
	}
	defer store.Close()

	fmt.Printf("base: %d rows imported in bulk; streaming %d more while querying\n\n",
		half, cfg.rows-half)

	// --- Append while querying -----------------------------------------
	batch := maxInt(half/100, 500)
	appendStart := time.Now()
	done := make(chan struct{})
	var appendErr error
	go func() {
		defer close(done)
		for at := half; at < cfg.rows; at += batch {
			n := minInt(batch, cfg.rows-at)
			rows := make([]int, n)
			for i := range rows {
				rows[i] = at + i
			}
			if err := store.Append(tbl.Select(rows)); err != nil {
				appendErr = err
				return
			}
		}
	}()

	var (
		mu         sync.Mutex
		lats       []time.Duration
		consistent = true
		queries    int
	)
	var qwg sync.WaitGroup
	for q := 0; q < 2; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			// Monotonicity holds per goroutine: each iteration's snapshot
			// is taken after the previous query returned. Across
			// goroutines completion order does not match snapshot order.
			var lastCount int64
			for {
				select {
				case <-done:
					return
				default:
				}
				start := time.Now()
				_, err := store.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`)
				lat := time.Since(start)
				cnt, err2 := store.Query(`SELECT COUNT(*) AS c FROM data;`)
				ok := true
				switch {
				case err != nil || err2 != nil:
					ok = false
				case cnt.Rows[0][0].Int() != cnt.Stats.RowsTotal:
					// One snapshot's scan and its row accounting disagree.
					ok = false
				case cnt.Rows[0][0].Int() < lastCount:
					// A later snapshot saw fewer rows: not a prefix cut.
					ok = false
				default:
					lastCount = cnt.Rows[0][0].Int()
				}
				mu.Lock()
				queries += 2
				lats = append(lats, lat)
				if !ok {
					consistent = false
				}
				mu.Unlock()
			}
		}()
	}
	<-done
	qwg.Wait()
	if appendErr != nil {
		return appendErr
	}
	appendElapsed := time.Since(appendStart)
	if err := store.Flush(); err != nil {
		return err
	}

	// Final cross-check: everything streamed is visible.
	final, err := store.Query(`SELECT COUNT(*) AS c FROM data;`)
	if err != nil {
		return err
	}
	if final.Rows[0][0].Int() != int64(cfg.rows) {
		consistent = false
	}

	// --- Compaction: generation count and resident bytes ----------------
	// Warm the segments so the before/after footprint comparison reflects
	// resident data, not never-loaded columns.
	if _, err := store.Query(`SELECT table_name, SUM(latency) AS s FROM data GROUP BY table_name ORDER BY s DESC LIMIT 10;`); err != nil {
		return err
	}
	before, _ := store.IngestStats()
	msBefore, _ := store.MemStats()
	if _, err := store.CompactNow(); err != nil {
		return err
	}
	after, _ := store.IngestStats()
	msAfter, _ := store.MemStats()

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	rep := ingestReport{
		BaseRows:              half,
		AppendedRows:          cfg.rows - half,
		AppendRate:            float64(cfg.rows-half) / appendElapsed.Seconds(),
		QueriesDuringAppend:   queries,
		ConsistencyOK:         consistent,
		Seals:                 before.Seals,
		SegmentsBeforeCompact: before.Segments,
		SegmentsAfterCompact:  after.Segments,
		ResidentBeforeCompact: msBefore.ResidentBytes,
		ResidentAfterCompact:  msAfter.ResidentBytes,
		GenBeforeCompact:      before.Gen,
		GenAfterCompact:       after.Gen,
	}
	if n := len(lats); n > 0 {
		rep.QueryP50Micros = lats[n/2].Microseconds()
		rep.QueryP99Micros = lats[n*99/100].Microseconds()
	}

	row("", "rows", "rate/s", "p50", "p99", "seals")
	row("append", fmt.Sprint(rep.AppendedRows),
		fmt.Sprintf("%.0f", rep.AppendRate),
		time.Duration(rep.QueryP50Micros*1000).Round(time.Microsecond).String(),
		time.Duration(rep.QueryP99Micros*1000).Round(time.Microsecond).String(),
		fmt.Sprint(rep.Seals))
	fmt.Println()
	row("", "segments", "resident MB", "generation")
	row("before", fmt.Sprint(rep.SegmentsBeforeCompact), mb(rep.ResidentBeforeCompact), fmt.Sprint(rep.GenBeforeCompact))
	row("after", fmt.Sprint(rep.SegmentsAfterCompact), mb(rep.ResidentAfterCompact), fmt.Sprint(rep.GenAfterCompact))
	fmt.Println()

	if consistent {
		fmt.Printf("consistency: ok (%d concurrent queries, monotonic prefix counts, totals matched)\n", queries)
	} else {
		fmt.Printf("consistency: FAILED\n")
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_ingest.json", blob, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_ingest.json")
	if !consistent {
		return fmt.Errorf("snapshot consistency violated during concurrent append")
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
