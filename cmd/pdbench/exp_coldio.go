package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/compress"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
)

// runColdIO measures the cold I/O path under compression: with per-chunk
// codec framing (manifest v3) a restricted query cold-reads only its
// active chunks' compressed byte ranges — one coalesced ReadAt per
// contiguous run, one single-record decompress per chunk — where the
// whole-column-codec baseline re-reads and decompresses the entire column
// file for every cold column. Three sweeps:
//
//   - layout comparison (fixed selective restriction, 25% budget): each
//     codec saved both ways; cold bytes, read runs, decompress time and
//     cold/warm latency side by side;
//   - selectivity sweep (per-chunk zippy, unlimited budget): cold disk
//     traffic and read runs must fall with the active-chunk count;
//   - budget sweep (per-chunk zippy, result cache on): a repeated query
//     under a tight budget answers fully active chunks from the result
//     cache without reloading them (cache-skipped > 0, cold chunks 0).
func runColdIO(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
		Reorder:          true,
	})
	if err != nil {
		return err
	}
	var footprint int64
	for _, name := range store.Columns() {
		col, err := store.ColumnErr(name)
		if err != nil {
			return err
		}
		footprint += col.Memory().Total()
	}
	base, err := os.MkdirTemp("", "pdbench-coldio-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	charts := []string{
		`SELECT table_name, COUNT(*) AS v FROM data %s GROUP BY table_name ORDER BY v DESC LIMIT 10;`,
		`SELECT table_name, SUM(latency) AS v FROM data %s GROUP BY table_name ORDER BY v DESC LIMIT 10;`,
	}
	runCharts := func(engine *exec.Engine, where string) (time.Duration, error) {
		start := time.Now()
		for _, chart := range charts {
			if _, err := engine.Query(fmt.Sprintf(chart, where)); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	codecs := []string{"zippy", "lzoish", "zlib"}
	type layout struct {
		name string
		save func(s *colstore.Store, dir, codec string) error
	}
	layouts := []layout{
		{"per-chunk", colstore.Save},
		{"whole-col", colstore.SaveLegacyV2},
	}

	fmt.Printf("store: %.2f MB resident, %d chunks; restriction = 1 country, budget = 25%%\n\n",
		float64(footprint)/1e6, store.NumChunks())
	fmt.Println("layout comparison (cold pass then warm pass):")
	row("codec", "layout", "cold chunks", "disk MB", "runs", "coalesced", "decomp ms", "cold", "warm")
	for _, codecName := range codecs {
		if _, err := compress.ByName(codecName); err != nil {
			return err
		}
		for _, lt := range layouts {
			dir := filepath.Join(base, codecName+"-"+lt.name)
			if err := lt.save(store, dir, codecName); err != nil {
				return err
			}
			mgr := memmgr.New(footprint/4, "2q")
			lazy, _, err := colstore.OpenLazy(dir, mgr)
			if err != nil {
				return err
			}
			engine := exec.New(lazy, exec.Options{Parallelism: cfg.parallelism})
			coldElapsed, err := runCharts(engine, `WHERE country = "de"`)
			if err != nil {
				return err
			}
			warmElapsed, err := runCharts(engine, `WHERE country = "de"`)
			if err != nil {
				return err
			}
			es := engine.Stats()
			io, _ := lazy.IOStats()
			row(codecName, lt.name,
				fmt.Sprint(es.ColdChunkLoads),
				mb(es.DiskBytesRead),
				fmt.Sprint(es.ReadRuns),
				fmt.Sprint(es.CoalescedReads),
				fmt.Sprintf("%.1f", float64(io.DecompressNanos)/1e6),
				coldElapsed.Round(time.Millisecond).String(),
				warmElapsed.Round(time.Millisecond).String())
			_ = lazy.Close()
		}
	}

	fmt.Println("\nselectivity sweep (per-chunk zippy, unlimited budget, cold open per row):")
	row("restriction", "active", "cold chunks", "disk MB", "runs", "coalesced", "latency")
	restrictions := []struct{ label, where string }{
		{"unrestricted", ``},
		{"4 countries", `WHERE country IN ("de", "ch", "us", "jp")`},
		{"2 countries", `WHERE country IN ("de", "ch")`},
		{"1 country", `WHERE country = "de"`},
	}
	zdir := filepath.Join(base, "zippy-per-chunk")
	for _, r := range restrictions {
		mgr := memmgr.New(0, "2q")
		lazy, _, err := colstore.OpenLazy(zdir, mgr)
		if err != nil {
			return err
		}
		engine := exec.New(lazy, exec.Options{Parallelism: cfg.parallelism})
		elapsed, err := runCharts(engine, r.where)
		if err != nil {
			return err
		}
		es := engine.Stats()
		row(r.label,
			fmt.Sprint(es.ActiveChunks/int64(len(charts))),
			fmt.Sprint(es.ColdChunkLoads),
			mb(es.DiskBytesRead),
			fmt.Sprint(es.ReadRuns),
			fmt.Sprint(es.CoalescedReads),
			elapsed.Round(time.Millisecond).String())
		_ = lazy.Close()
	}

	fmt.Println("\nbudget sweep (per-chunk zippy, result cache on, 1 country, cold then warm pass):")
	row("budget", "cold chunks", "disk MB", "evictions", "cache-skip", "cold pass", "warm pass")
	budgets := []int64{0, footprint / 4, footprint / 10}
	if cfg.memoryBudget > 0 {
		budgets = []int64{cfg.memoryBudget}
	}
	for _, budget := range budgets {
		mgr := memmgr.New(budget, "2q")
		lazy, _, err := colstore.OpenLazy(zdir, mgr)
		if err != nil {
			return err
		}
		engine := exec.New(lazy, exec.Options{
			Parallelism:      cfg.parallelism,
			ResultCacheBytes: 64 << 20,
		})
		coldElapsed, err := runCharts(engine, `WHERE country = "de"`)
		if err != nil {
			return err
		}
		warmElapsed, err := runCharts(engine, `WHERE country = "de"`)
		if err != nil {
			return err
		}
		es := engine.Stats()
		ms := mgr.Stats()
		label := "unlimited"
		if budget > 0 {
			label = fmt.Sprintf("%.0f%%", 100*float64(budget)/float64(footprint))
		}
		row(label,
			fmt.Sprint(es.ColdChunkLoads),
			mb(es.DiskBytesRead),
			fmt.Sprint(ms.Evictions),
			fmt.Sprint(es.CacheSkippedChunks),
			coldElapsed.Round(time.Millisecond).String(),
			warmElapsed.Round(time.Millisecond).String())
		_ = lazy.Close()
	}
	fmt.Println("\nper-chunk framing makes cold bytes track selectivity under compression, runs")
	fmt.Println("coalesce contiguous chunks into single reads, and cached fully-active chunks")
	fmt.Println("are answered without being loaded at all")
	return nil
}
