// Command pdbench regenerates every table and figure of "Processing a
// Trillion Cells per Mouse Click" on synthetic data with the same shape as
// the paper's query logs.
//
// Usage:
//
//	pdbench -exp all                 # every experiment
//	pdbench -exp table1 -rows 5000000 -reps 5
//	pdbench -exp steps               # Tables 2, 3, 4 and the trie numbers
//	pdbench -exp reorder             # Section 3 row-reordering factors
//	pdbench -exp figure5             # latency vs data loaded from disk
//	pdbench -exp production          # Section 6 skip/cache/scan split
//	pdbench -exp click               # the 20-queries-per-click headline
//	pdbench -exp countdistinct       # Section 5 approximation error
//	pdbench -exp codecs              # Section 5 compressor comparison
//	pdbench -exp caches              # Section 5 eviction policies
//	pdbench -exp distributed         # Section 4 tree + replicas
//	pdbench -exp faulttol            # Section 4 hedging, breakers, coverage
//	pdbench -exp mixer               # Section 4 RPC mixer tree + rebalancing
//	pdbench -exp groupby             # ablation: counts-array vs hash
//	pdbench -exp skipping            # ablation: Section 2.2 on/off
//	pdbench -exp partitionorder      # ablation: field-order sensitivity
//	pdbench -exp coldstart           # Section 5 byte-budgeted lazy loading
//	pdbench -exp chunkres            # chunk-granular residency vs selectivity
//	pdbench -exp coldio              # per-chunk compression + coalesced cold reads
//	pdbench -exp virtcol             # budget-aware (persisted) virtual columns
//	pdbench -exp ingest              # streaming appends, snapshot queries, compaction
//	pdbench -exp kernels             # vectorized kernels vs scalar, bloom/dict-shard pruning
//	pdbench -exp durability          # WAL fsync cost, checksum overhead, offline scrub
//
// Absolute numbers depend on the host; the relationships (who wins, by
// what factor, where curves bend) are the reproduction target. See
// EXPERIMENTS.md for paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// experiments maps -exp values to runners, in presentation order.
var experiments = []struct {
	name string
	desc string
	run  func(cfg config) error
}{
	{"table1", "Table 1: CSV vs record-io vs Dremel vs Basic (latency + memory)", runTable1},
	{"steps", "Tables 2-4: step-wise memory optimizations + trie numbers", runSteps},
	{"reorder", "Section 3: row reordering compression factors", runReorder},
	{"figure5", "Figure 5: latency by data loaded from disk", runFigure5},
	{"production", "Section 6: skipped/cached/scanned split", runProduction},
	{"click", "Section 1/6: one mouse click = 20 queries", runClick},
	{"countdistinct", "Section 5: approximate count distinct error", runCountDistinct},
	{"codecs", "Section 5: compression algorithm comparison", runCodecs},
	{"caches", "Section 5: cache eviction policies", runCaches},
	{"distributed", "Section 4: execution tree, replicas, stragglers", runDistributed},
	{"faulttol", "Section 4: deadlines, hedged re-dispatch, breakers, coverage", runFaultTol},
	{"mixer", "Section 4: RPC mixer tree vs flat coordinator; health-driven rebalancing", runMixerExp},
	{"groupby", "Ablation: counts-array vs hash-table group-by", runGroupBy},
	{"skipping", "Ablation: chunk skipping on/off", runSkipping},
	{"partitionorder", "Ablation: partition field order sensitivity", runPartitionOrder},
	{"layers", "Ablation: two-layer (uncompressed/compressed) hybrid", runLayers},
	{"coldstart", "Section 5: byte-budgeted lazy loading, cold vs warm", runColdStart},
	{"chunkres", "Section 5: chunk-granular residency vs restriction selectivity", runChunkRes},
	{"coldio", "Cold I/O: per-chunk compression, coalesced runs, cache-aware skips", runColdIO},
	{"virtcol", "Budget-aware virtual columns: sidecar persistence, eviction, span pruning", runVirtCol},
	{"ingest", "Streaming ingestion: append rate, snapshot query latency, compaction", runIngest},
	{"kernels", "Vectorized scan kernels vs scalar path; Bloom + dict-shard pruning", runKernels},
	{"durability", "Durable ingest: fsync policy cost, checksum overhead, offline scrub", runDurability},
}

// config carries the shared experiment parameters.
type config struct {
	rows         int
	reps         int
	seed         int64
	parallelism  int
	memoryBudget int64
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all', 'list')")
	rows := flag.Int("rows", 1_000_000, "dataset rows (paper: 5'000'000)")
	reps := flag.Int("reps", 3, "repetitions per latency measurement (paper: 5)")
	seed := flag.Int64("seed", 2012, "generator seed")
	parallelism := flag.Int("parallelism", 0, "chunk-scan workers per query (0 = all cores, 1 = sequential)")
	memoryBudget := flag.Int64("memory-budget", 0, "resident column byte budget for the coldstart experiment (0 = sweep fractions)")
	flag.Parse()

	cfg := config{rows: *rows, reps: *reps, seed: *seed, parallelism: *parallelism, memoryBudget: *memoryBudget}

	if *exp == "list" {
		for _, e := range experiments {
			fmt.Printf("  %-15s %s\n", e.name, e.desc)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && e.name != *exp {
			continue
		}
		ran = true
		fmt.Printf("\n=== %s — %s ===\n\n", e.name, e.desc)
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "pdbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "pdbench: unknown experiment %q; try -exp list\n", *exp)
		os.Exit(1)
	}
}

// mb renders bytes as MB with two decimals, like the paper's tables.
func mb(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/1e6) }

// row prints one fixed-width table row.
func row(cells ...string) {
	var b strings.Builder
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(&b, "%-12s", c)
		} else {
			fmt.Fprintf(&b, "%14s", c)
		}
	}
	fmt.Println(b.String())
}
