package main

import (
	"fmt"
	"os"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/workload"
)

// runColdStart measures the memory manager: a persisted store is opened
// lazily under shrinking byte budgets, a drill-down session is replayed
// cold and then warm, and the table reports what had to come from disk,
// what was evicted, and what the budget cost in latency. With
// -memory-budget set, only that budget is measured.
func runColdStart(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
	})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pdbench-coldstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := colstore.Save(store, dir, "zippy"); err != nil {
		return err
	}
	var footprint int64
	for _, name := range store.Columns() {
		col, err := store.ColumnErr(name)
		if err != nil {
			return err
		}
		footprint += col.Memory().Total()
	}
	clicks := workload.DrillDownSession(tbl, workload.SessionSpec{Seed: cfg.seed, Clicks: 4, QueriesPerClick: 10})

	budgets := []int64{0, footprint / 2, footprint / 4, footprint / 10}
	if cfg.memoryBudget > 0 {
		budgets = []int64{cfg.memoryBudget}
	}
	fmt.Printf("store footprint %.2f MB resident; session = %d clicks x %d queries\n\n",
		float64(footprint)/1e6, len(clicks), len(clicks[0].Queries))
	row("budget", "cold loads", "disk MB", "evictions", "resident MB", "cold pass", "warm pass")
	for _, budget := range budgets {
		mgr := memmgr.New(budget, "2q")
		lazy, _, err := colstore.OpenLazy(dir, mgr)
		if err != nil {
			return err
		}
		engine := exec.New(lazy, exec.Options{Parallelism: cfg.parallelism})
		replay := func() (time.Duration, error) {
			start := time.Now()
			for _, click := range clicks {
				for _, q := range click.Queries {
					if _, err := engine.Query(q); err != nil {
						return 0, err
					}
				}
			}
			return time.Since(start), nil
		}
		coldElapsed, err := replay()
		if err != nil {
			return err
		}
		warmElapsed, err := replay()
		if err != nil {
			return err
		}
		st := mgr.Stats()
		label := "unlimited"
		if budget > 0 {
			label = fmt.Sprintf("%.0f%%", 100*float64(budget)/float64(footprint))
		}
		row(label,
			fmt.Sprint(st.ColdLoads),
			mb(st.DiskBytesRead),
			fmt.Sprint(st.Evictions),
			mb(st.ResidentBytes),
			coldElapsed.Round(time.Millisecond).String(),
			warmElapsed.Round(time.Millisecond).String())
	}
	fmt.Println("\ncold pass loads columns on demand; warm pass shows what the budget keeps resident")
	fmt.Println("(unlimited warm pass = zero cold loads, the Section 5 steady state)")
	return nil
}
