package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"powerdrill"
)

// durabilityReport is the machine-readable result of the durability
// experiment, written to BENCH_durability.json.
type durabilityReport struct {
	// Append throughput per WAL fsync policy (rows/sec): what each rung
	// of the durability ladder costs.
	AppendRateNever    float64 `json:"append_rows_per_sec_fsync_never"`
	AppendRateInterval float64 `json:"append_rows_per_sec_fsync_interval"`
	AppendRateAlways   float64 `json:"append_rows_per_sec_fsync_always"`

	// Cold-read checksum verification: first-touch query latency with
	// verification on vs off, and how many records the verified run
	// checked.
	ColdQueryVerifyMicros   int64 `json:"cold_query_verify_micros"`
	ColdQueryNoVerifyMicros int64 `json:"cold_query_noverify_micros"`
	ChecksumRecordsVerified int   `json:"checksum_records_verified"`

	// Offline scrub over the final store (base + segments + WAL).
	ScrubFiles    int     `json:"scrub_files"`
	ScrubRecords  int     `json:"scrub_records"`
	ScrubMB       float64 `json:"scrub_mb"`
	ScrubMicros   int64   `json:"scrub_micros"`
	ScrubCorrupt  int     `json:"scrub_corrupt"`
	ScrubMBPerSec float64 `json:"scrub_mb_per_sec"`
}

// runDurability measures what the durable-ingest machinery costs: append
// throughput under each WAL fsync policy, the cold-read latency of
// checksum verification, and the offline scrub's pass rate over
// everything the run wrote. The scrub finding zero corrupt files on a
// freshly written store is the experiment's correctness gate. Results
// land in BENCH_durability.json.
func runDurability(cfg config) error {
	tbl := dataset(cfg)
	half := cfg.rows / 2
	baseRows := make([]int, half)
	for i := range baseRows {
		baseRows[i] = i
	}
	opts := powerdrill.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     maxInt(cfg.rows/100, 1000),
		OptimizeElements: true,
		Reorder:          true,
		Parallelism:      cfg.parallelism,
		IngestSealRows:   maxInt(half/10, 1000),
	}
	built, err := powerdrill.Build(tbl.Select(baseRows), opts)
	if err != nil {
		return err
	}

	rep := durabilityReport{}
	batch := maxInt(half/100, 500)
	var lastDir string
	for _, policy := range []string{powerdrill.FsyncNever, powerdrill.FsyncInterval, powerdrill.FsyncAlways} {
		dir, err := os.MkdirTemp("", "pdbench-durability-")
		if err != nil {
			return err
		}
		if policy != powerdrill.FsyncAlways {
			defer os.RemoveAll(dir)
		}
		if err := built.Save(dir, "zippy"); err != nil {
			return err
		}
		popts := opts
		popts.IngestFsyncPolicy = policy
		store, _, err := powerdrill.Open(dir, popts)
		if err != nil {
			return err
		}
		start := time.Now()
		for at := half; at < cfg.rows; at += batch {
			n := minInt(batch, cfg.rows-at)
			rows := make([]int, n)
			for i := range rows {
				rows[i] = at + i
			}
			if err := store.Append(tbl.Select(rows)); err != nil {
				return err
			}
		}
		if err := store.Flush(); err != nil {
			return err
		}
		rate := float64(cfg.rows-half) / time.Since(start).Seconds()
		if err := store.Close(); err != nil {
			return err
		}
		switch policy {
		case powerdrill.FsyncNever:
			rep.AppendRateNever = rate
		case powerdrill.FsyncInterval:
			rep.AppendRateInterval = rate
		case powerdrill.FsyncAlways:
			rep.AppendRateAlways = rate
			lastDir = dir
		}
	}
	defer os.RemoveAll(lastDir)

	row("", "fsync policy", "append rows/s")
	row("", "never", fmt.Sprintf("%.0f", rep.AppendRateNever))
	row("", "interval", fmt.Sprintf("%.0f", rep.AppendRateInterval))
	row("", "always", fmt.Sprintf("%.0f", rep.AppendRateAlways))
	fmt.Println()

	// --- Cold-read verification cost ------------------------------------
	coldQuery := `SELECT table_name, SUM(latency) AS s FROM data GROUP BY table_name ORDER BY s DESC LIMIT 10;`
	for _, verify := range []bool{true, false} {
		store, _, err := powerdrill.Open(lastDir, powerdrill.Options{
			Parallelism:           cfg.parallelism,
			DisableChecksumVerify: !verify,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := store.Query(coldQuery)
		if err != nil {
			return err
		}
		micros := time.Since(start).Microseconds()
		if verify {
			rep.ColdQueryVerifyMicros = micros
			rep.ChecksumRecordsVerified = res.Stats.ChecksumVerified
		} else {
			rep.ColdQueryNoVerifyMicros = micros
		}
		if err := store.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("cold query: %dµs verified (%d records), %dµs unverified\n\n",
		rep.ColdQueryVerifyMicros, rep.ChecksumRecordsVerified, rep.ColdQueryNoVerifyMicros)

	// --- Offline scrub ---------------------------------------------------
	start := time.Now()
	srep, err := powerdrill.Scrub(lastDir)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	var bytes int64
	for _, f := range srep.Files {
		bytes += f.Bytes
	}
	rep.ScrubFiles = len(srep.Files)
	rep.ScrubRecords = srep.Records
	rep.ScrubMB = float64(bytes) / 1e6
	rep.ScrubMicros = elapsed.Microseconds()
	rep.ScrubCorrupt = srep.Corrupt
	if s := elapsed.Seconds(); s > 0 {
		rep.ScrubMBPerSec = rep.ScrubMB / s
	}
	fmt.Printf("scrub: %d files (%.2f MB), %d records verified, %d corrupt, %v\n",
		rep.ScrubFiles, rep.ScrubMB, rep.ScrubRecords, rep.ScrubCorrupt, elapsed.Round(time.Millisecond))

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_durability.json", blob, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_durability.json")
	if rep.ScrubCorrupt != 0 {
		return fmt.Errorf("scrub found %d corrupt files in a freshly written store", rep.ScrubCorrupt)
	}
	if rep.ScrubRecords == 0 {
		return fmt.Errorf("scrub verified no records — checksums missing from the written store")
	}
	return nil
}
