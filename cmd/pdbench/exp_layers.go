package main

import (
	"fmt"
	"math/rand"

	"powerdrill/internal/colstore"
)

// runLayers is the ablation for the Section 3 hybrid: uncompressed and
// compressed in-memory layers with eviction. It replays a skewed chunk
// access pattern under shrinking memory budgets and reports where accesses
// were served from — the memory/latency trade the hybrid navigates.
func runLayers(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 200
	if chunk < 500 {
		chunk = 500
	}
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
	})
	if err != nil {
		return err
	}
	// Total uncompressed element bytes, to scale the budgets.
	var totalHot int64
	for _, name := range store.Columns() {
		m, err := store.MemoryFor(name)
		if err != nil {
			return err
		}
		totalHot += m.Elements
	}
	fmt.Printf("%d chunks, %.2f MB of uncompressed elements\n\n", store.NumChunks(), float64(totalHot)/1e6)

	// Zipf-skewed access pattern over (column, chunk) pairs: hot chunks
	// revisited constantly, cold ones occasionally — a drill-down session.
	r := rand.New(rand.NewSource(cfg.seed))
	zipf := rand.NewZipf(r, 1.3, 1, uint64(store.NumChunks()-1))
	cols := store.Columns()
	type access struct {
		col   string
		chunk int
	}
	pattern := make([]access, 20_000)
	for i := range pattern {
		pattern[i] = access{cols[r.Intn(len(cols))], int(zipf.Uint64())}
	}

	row("hot budget", "hot hits", "promotions", "disk loads", "disk MB")
	for _, frac := range []float64{1.0, 0.25, 0.05, 0.01} {
		budget := int64(float64(totalHot) * frac)
		if budget < 1024 {
			budget = 1024
		}
		tl, err := colstore.NewTwoLayer(store, "zippy", budget, totalHot, "2q")
		if err != nil {
			return err
		}
		for _, a := range pattern {
			if _, err := tl.Access(a.col, a.chunk); err != nil {
				return err
			}
		}
		st := tl.Stats()
		row(fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprint(st.HotHits), fmt.Sprint(st.Promotions),
			fmt.Sprint(st.DiskLoads), mb(st.DiskBytes))
	}
	fmt.Println("\n(Section 3: the hybrid keeps hot items uncompressed, demotes to the")
	fmt.Println(" compressed layer under pressure, and only then falls back to disk)")
	return nil
}
