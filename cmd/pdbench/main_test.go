package main

import (
	"os"
	"testing"
)

// TestAllExperimentsRun executes every experiment at miniature scale: the
// harness must produce all tables without errors regardless of dataset
// size. (Output goes to stdout; correctness of the underlying machinery is
// covered by the internal package tests — this guards the harness glue.)
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	// Experiments write BENCH_*.json into the working directory; keep
	// test runs from littering the package dir.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	cfg := config{rows: 20_000, reps: 1, seed: 7}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if err := e.run(cfg); err != nil {
				t.Fatalf("experiment %s: %v", e.name, err)
			}
		})
	}
}

func TestHelpers(t *testing.T) {
	if got := mb(2_500_000); got != "2.50" {
		t.Errorf("mb = %q", got)
	}
	if got := truncate("", 5); got != "<unrestricted>" {
		t.Errorf("truncate empty = %q", got)
	}
	if got := truncate("abcdefgh", 5); len(got) == 0 {
		t.Errorf("truncate = %q", got)
	}
	if abs(-2) != 2 || abs(3) != 3 {
		t.Error("abs broken")
	}
}
