package main

import (
	"fmt"
	"sort"
	"time"

	"powerdrill/internal/cluster"
	"powerdrill/internal/colstore"
	"powerdrill/internal/workload"
)

// runFaultTol exercises the serving tree's fault tolerance (Section 4 on a
// busy shared fleet): tiered hedging against stragglers, retries and
// coverage under injected failure rates, and graceful degradation when a
// whole shard dies.
func runFaultTol(cfg config) error {
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: cfg.rows, Seed: cfg.seed})
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	storeOpts := colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
	}
	q := `SELECT country, COUNT(*) as c, SUM(latency) FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`
	const shards = 8
	mkCluster := func(opts cluster.Options) (*cluster.Cluster, time.Duration, error) {
		opts.Shards = shards
		opts.Replicas = 2
		opts.Store = storeOpts
		c, err := cluster.NewLocal(tbl, opts)
		if err != nil {
			return nil, 0, err
		}
		// Warm up: establish per-shard latency estimates and measure the
		// healthy baseline.
		start := time.Now()
		if _, err := c.Query(q); err != nil {
			return nil, 0, err
		}
		return c, time.Since(start), nil
	}

	// --- Hedge-threshold sweep under stragglers -------------------------
	// 30% of shards get a straggling primary at 10x the healthy latency
	// (at least 100ms); the replica is clean. Hedged re-dispatch should
	// keep p99 well under the straggle delay; multiplier 1000 effectively
	// disables hedging and shows the undefended tail.
	fmt.Println("tiered hedging: 30% of shards straggle their primary at 10x base latency")
	fmt.Println()
	row("hedge mult", "straggle", "p50", "p99", "hedges", "coverage")
	const n = 30
	for _, mult := range []float64{1000, 4, 2} {
		c, base, err := mkCluster(cluster.Options{HedgeMultiplier: mult})
		if err != nil {
			return err
		}
		straggle := 10 * base
		if straggle < 100*time.Millisecond {
			straggle = 100 * time.Millisecond
		}
		// Straggle the primaries of shards 0-1-2 (30% of 8, rounded down
		// to a deterministic set).
		for i, leaf := range c.Leaves() {
			if i%2 == 0 && i/2 < 3 {
				leaf.SetStraggle(straggle)
			}
		}
		lats := make([]time.Duration, 0, n)
		minCov := 1.0
		for i := 0; i < n; i++ {
			start := time.Now()
			res, err := c.Query(q)
			if err != nil {
				return err
			}
			lats = append(lats, time.Since(start))
			if res.Coverage < minCov {
				minCov = res.Coverage
			}
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		label := fmt.Sprintf("%.0fx", mult)
		if mult >= 1000 {
			label = "off"
		}
		row(label, straggle.Round(time.Millisecond).String(),
			lats[n/2].Round(time.Millisecond).String(),
			lats[n*99/100].Round(time.Millisecond).String(),
			fmt.Sprint(c.Stats().Hedges),
			fmt.Sprintf("%.3f", minCov))
	}
	fmt.Println("\n(hedging off: p99 eats the full straggle; tiered hedging re-dispatches")
	fmt.Println(" after a few multiples of the moving latency estimate and hides the tail)")

	// --- Failure-rate sweep ---------------------------------------------
	// Every leaf fails each sub-query independently with probability p;
	// retries and replica failover absorb most of it, coverage reports
	// what was lost. A deadline bounds the worst case.
	fmt.Println("\ninjected failures: every leaf fails each call with probability p")
	fmt.Println()
	row("error rate", "full answers", "min coverage", "retries", "missing")
	for _, p := range []float64{0, 0.1, 0.3} {
		c, _, err := mkCluster(cluster.Options{Deadline: 5 * time.Second})
		if err != nil {
			return err
		}
		for i, leaf := range c.Leaves() {
			leaf.Inject().SetErrorRate(p, cfg.seed+int64(i))
		}
		full := 0
		minCov := 1.0
		for i := 0; i < n; i++ {
			res, err := c.Query(q)
			if err != nil {
				return err
			}
			if res.Coverage == 1 {
				full++
			}
			if res.Coverage < minCov {
				minCov = res.Coverage
			}
		}
		st := c.Stats()
		row(fmt.Sprintf("%.0f%%", 100*p),
			fmt.Sprintf("%d/%d", full, n),
			fmt.Sprintf("%.3f", minCov),
			fmt.Sprint(st.Retries),
			fmt.Sprint(st.ShardsMissing))
	}

	// --- Dead shard: graceful degradation -------------------------------
	c, _, err := mkCluster(cluster.Options{Deadline: 5 * time.Second})
	if err != nil {
		return err
	}
	c.Leaves()[0].SetFail(true)
	c.Leaves()[1].SetFail(true)
	res, err := c.Query(q)
	if err != nil {
		return err
	}
	fmt.Printf("\ndead shard (both replicas): answer served with coverage %.3f, %d of %d shards missing\n",
		res.Coverage, res.Stats.ShardsMissing, shards)
	st := c.Stats()
	fmt.Printf("stats: %d sub-queries, %d hedges, %d retries, %d partial answers, %d breaker opens\n",
		st.SubQueries, st.Hedges, st.Retries, st.PartialAnswers, st.BreakerOpens)
	fmt.Println("\n(paper: the UI shows the fraction of data an answer covers; the serving")
	fmt.Println(" tree degrades to partial answers instead of failing the mouse click)")
	return nil
}
