package main

// The mixer-tier experiment drives the serving tree as real RPC processes
// (Section 4): a flat coordinator over remote leaves versus a 2-level tree
// of mixer nodes over the same leaves must answer bit-for-bit identically
// at full coverage, and the health-driven rebalancer must move a hot
// shard's replica off a straggling server with a measurable p99
// improvement. Results land in BENCH_mixer.json.

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"time"

	"powerdrill/internal/cluster"
	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

// mixerReport is the JSON written to BENCH_mixer.json.
type mixerReport struct {
	Rows          int     `json:"rows"`
	Shards        int     `json:"shards"`
	TreeIdentical bool    `json:"tree_identical"`
	Coverage      float64 `json:"coverage"`

	StraggleMS  float64    `json:"straggle_ms"`
	P50BeforeMS float64    `json:"p50_before_ms"`
	P99BeforeMS float64    `json:"p99_before_ms"`
	P50AfterMS  float64    `json:"p50_after_ms"`
	P99AfterMS  float64    `json:"p99_after_ms"`
	Move        *mixerMove `json:"rebalance_move"`
}

type mixerMove struct {
	Shard  int    `json:"shard"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

func runMixerExp(cfg config) error {
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: cfg.rows, Seed: cfg.seed})
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	storeOpts := colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
	}
	rep := mixerReport{Rows: cfg.rows, Shards: 6}

	// --- Flat coordinator vs 2-level mixer tree, over real RPC ----------
	shards := tbl.Shard(rep.Shards)
	var leafAddrs []string
	for i, shardTbl := range shards {
		store, err := colstore.FromTable(shardTbl, storeOpts)
		if err != nil {
			return err
		}
		leaf := cluster.NewLocalLeaf(fmt.Sprintf("leaf%d", i), exec.New(store, exec.Options{}))
		addr, err := serveNodeRPC(leaf)
		if err != nil {
			return err
		}
		leafAddrs = append(leafAddrs, addr)
	}
	remoteSets := func(addrs []string) [][]cluster.Leaf {
		var sets [][]cluster.Leaf
		for _, a := range addrs {
			sets = append(sets, []cluster.Leaf{cluster.NewRemoteLeaf(a)})
		}
		return sets
	}
	flat := cluster.FromLeaves(remoteSets(leafAddrs), cluster.Options{Replicas: 1})

	// Two mixer processes, each served over RPC like any other node, each
	// fanning out to half the leaf fleet.
	addrA, err := serveNodeRPC(cluster.NewMixer("mixer-a", remoteSets(leafAddrs[:3]), cluster.Options{Replicas: 1}))
	if err != nil {
		return err
	}
	addrB, err := serveNodeRPC(cluster.NewMixer("mixer-b", remoteSets(leafAddrs[3:]), cluster.Options{Replicas: 1}))
	if err != nil {
		return err
	}
	tree := cluster.FromLeaves(remoteSets([]string{addrA, addrB}), cluster.Options{Replicas: 1})

	queries := []string{
		`SELECT country, COUNT(*) as c, SUM(latency), AVG(latency) FROM data GROUP BY country ORDER BY c DESC, country ASC LIMIT 10;`,
		`SELECT user, MIN(latency), MAX(latency), AVG(latency) FROM data GROUP BY user;`,
	}
	rep.TreeIdentical = true
	rep.Coverage = 1
	for _, q := range queries {
		fres, err := flat.Query(q)
		if err != nil {
			return fmt.Errorf("flat coordinator: %w", err)
		}
		tres, err := tree.Query(q)
		if err != nil {
			return fmt.Errorf("mixer tree: %w", err)
		}
		if !sameRowsExactly(fres.Rows, tres.Rows) {
			rep.TreeIdentical = false
		}
		if fres.Coverage < rep.Coverage {
			rep.Coverage = fres.Coverage
		}
		if tres.Coverage < rep.Coverage {
			rep.Coverage = tres.Coverage
		}
	}
	if !rep.TreeIdentical {
		return fmt.Errorf("mixer tree diverged from the flat coordinator")
	}
	if rep.Coverage != 1 {
		return fmt.Errorf("coverage %v over a healthy fleet", rep.Coverage)
	}
	fmt.Printf("flat coordinator vs 2-level mixer tree over RPC (%d leaves, %d queries):\n",
		rep.Shards, len(queries))
	fmt.Println("  identical results: ok (bit-for-bit, floats included)")
	fmt.Println("  coverage==1: ok")

	// --- Health-driven rebalancing --------------------------------------
	// One replica per shard with a spare server; shard 0's server straggles
	// at 10x the healthy latency, so every query pays it — until the
	// rebalancer rebuilds the replica on the spare.
	c, err := cluster.NewLocal(tbl, cluster.Options{
		Shards: rep.Shards, Replicas: 1, Servers: 4, Store: storeOpts,
	})
	if err != nil {
		return err
	}
	q := queries[0]
	base := time.Now()
	if _, err := c.Query(q); err != nil {
		return err
	}
	straggle := 10 * time.Since(base)
	if straggle < 30*time.Millisecond {
		straggle = 30 * time.Millisecond
	}
	rep.StraggleMS = float64(straggle) / 1e6
	c.Leaves()[0].SetStraggle(straggle)

	const n = 20
	measure := func() (p50, p99 time.Duration, err error) {
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, err := c.Query(q); err != nil {
				return 0, 0, err
			}
			lats = append(lats, time.Since(start))
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats[len(lats)/2], lats[len(lats)*99/100], nil
	}
	p50, p99, err := measure()
	if err != nil {
		return err
	}
	rep.P50BeforeMS = float64(p50) / 1e6
	rep.P99BeforeMS = float64(p99) / 1e6

	moves, err := c.Rebalance(cluster.RebalanceOptions{})
	if err != nil {
		return err
	}
	if len(moves) != 1 {
		return fmt.Errorf("rebalancer made %d moves, want 1 (straggling shard 0)", len(moves))
	}
	mv := moves[0]
	rep.Move = &mixerMove{Shard: mv.Shard, From: mv.From, To: mv.To, Reason: mv.Reason}
	p50, p99, err = measure()
	if err != nil {
		return err
	}
	rep.P50AfterMS = float64(p50) / 1e6
	rep.P99AfterMS = float64(p99) / 1e6

	fmt.Printf("\nrebalance: shard 0's only replica straggles its server at %.0fms\n", rep.StraggleMS)
	row("", "p50", "p99")
	row("straggling", fmt.Sprintf("%.1fms", rep.P50BeforeMS), fmt.Sprintf("%.1fms", rep.P99BeforeMS))
	row("rebalanced", fmt.Sprintf("%.1fms", rep.P50AfterMS), fmt.Sprintf("%.1fms", rep.P99AfterMS))
	fmt.Printf("moved shard %d replica %s -> %s (reason: %s); p99 %.1fx better\n",
		mv.Shard, mv.From, mv.To, mv.Reason, rep.P99BeforeMS/math.Max(rep.P99AfterMS, 1e-9))
	if rep.P99AfterMS >= rep.P99BeforeMS {
		return fmt.Errorf("rebalance did not improve p99: %.1fms -> %.1fms", rep.P99BeforeMS, rep.P99AfterMS)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_mixer.json", blob, 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_mixer.json")
	return nil
}

// serveNodeRPC serves a node (leaf or mixer) over loopback RPC and returns
// its address; the listener lives for the rest of the process.
func serveNodeRPC(node cluster.Leaf) (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go cluster.ServeNode(l, node)
	return l.Addr().String(), nil
}

// sameRowsExactly compares result rows as sets, demanding exact equality —
// for floats, the very bits.
func sameRowsExactly(a, b [][]value.Value) bool {
	a = append([][]value.Value{}, a...)
	b = append([][]value.Value{}, b...)
	canon := func(rows [][]value.Value) {
		sort.Slice(rows, func(x, y int) bool {
			for i := range rows[x] {
				if c := rows[x][i].Compare(rows[y][i]); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	canon(a)
	canon(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av.Kind() != bv.Kind() {
				return false
			}
			if av.Kind() == value.KindFloat64 {
				if math.Float64bits(av.Float()) != math.Float64bits(bv.Float()) {
					return false
				}
				continue
			}
			if !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}
