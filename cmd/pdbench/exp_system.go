package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"powerdrill/internal/cache"
	"powerdrill/internal/cluster"
	"powerdrill/internal/colstore"
	"powerdrill/internal/compress"
	"powerdrill/internal/exec"
	"powerdrill/internal/prodsim"
	"powerdrill/internal/sketch"
	"powerdrill/internal/workload"
)

// prodConfig scales the production simulation to the -rows flag.
func prodConfig(cfg config) prodsim.Config {
	rows := cfg.rows / 4
	if rows < 20_000 {
		rows = 20_000
	}
	chunk := rows / 200
	if chunk < 500 {
		chunk = 500
	}
	return prodsim.Config{
		Rows:             rows,
		Servers:          4,
		Sessions:         6,
		ClicksPerSession: 10,
		QueriesPerClick:  20,
		Seed:             cfg.seed,
		Store: colstore.Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     chunk,
			OptimizeElements: true,
		},
		EvictProb: 0.15,
		DiskMBps:  100,
	}
}

// runFigure5 reproduces Figure 5: average latency by the amount of data
// loaded from disk (log2 buckets; the paper buckets by GB, this harness by
// MB at laboratory scale).
func runFigure5(cfg config) error {
	rep, err := prodsim.Run(prodConfig(cfg))
	if err != nil {
		return err
	}
	fmt.Printf("%d queries over %d clicks; disk model 100 MB/s\n\n", rep.Queries, rep.Clicks)
	fmt.Println("  data loaded (log2 MB buckets)   queries   avg latency")
	for _, b := range rep.Buckets {
		label := "memory only"
		if b.Log2MB >= 0 {
			label = fmt.Sprintf("[%d, %d) MB", 1<<b.Log2MB, 1<<(b.Log2MB+1))
		}
		bar := strings.Repeat("#", int(b.AvgLatency.Milliseconds()/2)+1)
		fmt.Printf("  %-28s %8d   %10s %s\n", label, b.Queries, b.AvgLatency.Round(10*time.Microsecond), bar)
	}
	return nil
}

// runProduction reproduces the Section 6 headline split: percentage of
// underlying records skipped, served from cache, and scanned.
func runProduction(cfg config) error {
	rep, err := prodsim.Run(prodConfig(cfg))
	if err != nil {
		return err
	}
	fmt.Printf("records skipped:  %6.2f%%   (paper: 92.41%%)\n", rep.SkippedPct)
	fmt.Printf("records cached:   %6.2f%%   (paper:  5.02%%)\n", rep.CachedPct)
	fmt.Printf("records scanned:  %6.2f%%   (paper:  2.66%%)\n", rep.ScannedPct)
	fmt.Printf("\nqueries touching no disk: %.1f%%  (paper: >70%%)\n", rep.NoDiskPct)
	fmt.Printf("avg latency (no disk):    %v\n", rep.AvgLatencyNoDisk.Round(time.Microsecond))
	fmt.Printf("avg latency (overall):    %v\n", rep.AvgLatency.Round(time.Microsecond))
	fmt.Printf("avg cells covered/click:  %.2e  (paper: 782 billion)\n", rep.AvgCellsPerClick)
	return nil
}

// runClick reproduces the headline interaction: one mouse click triggering
// 20 group-by queries over a sharded cluster.
func runClick(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	c, err := cluster.NewLocal(tbl, cluster.Options{
		Shards:   4,
		Replicas: 2,
		Store: colstore.Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     chunk,
			OptimizeElements: true,
		},
		Engine: exec.Options{ResultCacheBytes: 64 << 20, Parallelism: cfg.parallelism},
	})
	if err != nil {
		return err
	}
	clicks := workload.DrillDownSession(tbl, workload.SessionSpec{Seed: cfg.seed, Clicks: 3, QueriesPerClick: 20})
	for i, click := range clicks {
		start := time.Now()
		var cells int64
		for _, q := range click.Queries {
			res, err := c.Query(q)
			if err != nil {
				return fmt.Errorf("click %d: %w", i, err)
			}
			cells += res.Stats.CellsCovered
		}
		elapsed := time.Since(start)
		rate := float64(cells) / elapsed.Seconds()
		fmt.Printf("click %d (%-40q): 20 queries, %.2e cells in %v (%.2e cells/s)\n",
			i+1, truncate(click.Restriction, 38), float64(cells), elapsed.Round(time.Millisecond), rate)
	}
	fmt.Println("\n(paper: 20 queries process 782 billion cells in 30-40 s on >1000 machines)")
	return nil
}

func truncate(s string, n int) string {
	if s == "" {
		return "<unrestricted>"
	}
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// runCountDistinct reproduces the Section 5 approximation: error of the
// m-smallest-hashes estimate against the exact distinct count.
func runCountDistinct(cfg config) error {
	tbl := dataset(cfg)
	exact := map[string]bool{}
	for _, v := range tbl.Column("table_name").Strs {
		exact[v] = true
	}
	fmt.Printf("table_name distinct values (exact): %d\n\n", len(exact))
	row("m", "estimate", "error", "sketch KB")
	for _, m := range []int{256, 1024, 2048, 8192} {
		k := sketch.NewKMV(m)
		for _, v := range tbl.Column("table_name").Strs {
			k.AddString(v)
		}
		est := k.Estimate()
		errPct := 100 * abs(float64(est)-float64(len(exact))) / float64(len(exact))
		row(fmt.Sprint(m), fmt.Sprint(est), fmt.Sprintf("%.2f%%", errPct),
			fmt.Sprintf("%.1f", float64(k.MemoryBytes())/1024))
	}
	fmt.Println("\n(paper: m typically a couple of thousand; sketches merge across the tree)")
	return nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// runCodecs reproduces the Section 5 compressor comparison on real column
// bytes: ratio and throughput.
func runCodecs(cfg config) error {
	tbl := dataset(cfg)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     50_000,
		OptimizeElements: true,
	})
	if err != nil {
		return err
	}
	// Assemble a representative payload: table_name elements + dictionary.
	var payload []byte
	col, err := store.ColumnErr("table_name")
	if err != nil {
		return err
	}
	for _, ch := range col.Chunks {
		payload = ch.Elems.AppendBytes(payload)
	}
	for i := 0; i < col.Dict.Len(); i++ {
		payload = append(payload, col.Dict.Value(uint32(i)).Str()...)
	}
	fmt.Printf("payload: %s MB of table_name elements + dictionary strings\n\n", mb(int64(len(payload))))
	row("codec", "ratio", "compress MB/s", "decomp MB/s")
	for _, name := range compress.Names() {
		if name == "rle" {
			continue // analytical tool, not a general codec
		}
		codec, err := compress.ByName(name)
		if err != nil {
			return err
		}
		comp := codec.Compress(nil, payload)
		cAvg, err := measure(cfg.reps, func() error {
			codec.Compress(nil, payload)
			return nil
		})
		if err != nil {
			return err
		}
		dAvg, err := measure(cfg.reps, func() error {
			_, err := codec.Decompress(nil, comp)
			return err
		})
		if err != nil {
			return err
		}
		row(name,
			fmt.Sprintf("%.2fx", float64(len(payload))/float64(len(comp))),
			mbps(len(payload), cAvg), mbps(len(payload), dAvg))
	}
	fmt.Println("\n(paper: ZLIB+Huffman gains 20-30% ratio at ~10x slower; an LZO variant")
	fmt.Println(" won production for ~10% better ratio and 2x faster decompression)")
	return nil
}

func mbps(bytes int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(bytes)/1e6/d.Seconds())
}

// runCaches reproduces the Section 5 cache-policy comparison: hit rates of
// LRU vs 2Q vs ARC under a drill-down working set polluted by one-time
// full scans.
func runCaches(cfg config) error {
	policies := []func(int64) cache.Cache{
		func(n int64) cache.Cache { return cache.NewLRU(n) },
		func(n int64) cache.Cache { return cache.NewTwoQ(n) },
		func(n int64) cache.Cache { return cache.NewARC(n) },
	}
	const capacity = 100 * 64 // 100 chunk results of 64 bytes
	row("policy", "hit rate", "hits", "misses", "evictions")
	for _, mk := range policies {
		c := mk(capacity)
		// Working set: 60 hot chunk results revisited every click;
		// pollution: a full scan of 1000 cold chunks every 5th click.
		for click := 0; click < 100; click++ {
			for i := 0; i < 60; i++ {
				key := fmt.Sprintf("hot-%d", i)
				if _, ok := c.Get(key); !ok {
					c.Put(key, i, 64)
				}
			}
			if click%5 == 4 {
				for i := 0; i < 1000; i++ {
					key := fmt.Sprintf("scan-%d-%d", click, i)
					if _, ok := c.Get(key); !ok {
						c.Put(key, i, 64)
					}
				}
			}
		}
		st := c.Stats()
		row(c.Name(), fmt.Sprintf("%.3f", st.HitRate()),
			fmt.Sprint(st.Hits), fmt.Sprint(st.Misses), fmt.Sprint(st.Evictions))
	}
	fmt.Println("\n(paper: one-time scans invalidate LRU; production uses ARC/2Q-like policies)")
	return nil
}

// runDistributed reproduces Section 4: scaling over shards, and replicas
// hiding stragglers.
func runDistributed(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 100
	if chunk < 1000 {
		chunk = 1000
	}
	storeOpts := colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
	}
	q := `SELECT country, COUNT(*) as c, SUM(latency) FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`
	row("shards", "replicas", "latency")
	for _, shards := range []int{1, 2, 4, 8} {
		c, err := cluster.NewLocal(tbl, cluster.Options{Shards: shards, Replicas: 1, Store: storeOpts})
		if err != nil {
			return err
		}
		avg, err := measure(cfg.reps, func() error {
			_, err := c.Query(q)
			return err
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(shards), "1", avg.Round(time.Microsecond).String())
	}

	fmt.Println("\nstraggler injection (30% of leaves sleep 100ms):")
	row("replicas", "latency")
	for _, replicas := range []int{1, 2} {
		c, err := cluster.NewLocal(tbl, cluster.Options{Shards: 4, Replicas: replicas, Store: storeOpts})
		if err != nil {
			return err
		}
		// Mark every first replica of 30% of the shards slow; with
		// replication the second copy answers immediately.
		for i, leaf := range c.Leaves() {
			if i%(3*replicas) == 0 {
				leaf.SetStraggle(100 * time.Millisecond)
			}
		}
		avg, err := measure(cfg.reps, func() error {
			_, err := c.Query(q)
			return err
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(replicas), avg.Round(time.Millisecond).String())
	}
	fmt.Println("\n(paper: sub-queries go to a primary and a replica; the first answer wins)")
	return nil
}

// runGroupBy is the ablation behind Section 2.5's 100x: the dense
// counts-array inner loop versus a generic hash-table group-by over the
// same in-memory data.
func runGroupBy(cfg config) error {
	tbl := dataset(cfg)
	store, err := colstore.FromTable(tbl, colstore.Options{OptimizeElements: true})
	if err != nil {
		return err
	}
	engine := exec.New(store, exec.Options{Parallelism: cfg.parallelism})
	row("field", "counts-array", "hash-table", "speedup")
	for _, field := range []string{"country", "table_name"} {
		q := fmt.Sprintf(`SELECT %s, COUNT(*) as c FROM data GROUP BY %s ORDER BY c DESC LIMIT 10;`, field, field)
		fast, err := measure(cfg.reps, func() error {
			_, err := engine.Query(q)
			return err
		})
		if err != nil {
			return err
		}
		// Generic baseline: materialize each value, hash it, then extract
		// the same top-10 — the work a traditional scan engine does.
		col := tbl.Column(field)
		slow, err := measure(cfg.reps, func() error {
			counts := make(map[string]int64, 1024)
			for _, v := range col.Strs {
				counts[v]++
			}
			type kv struct {
				k string
				v int64
			}
			all := make([]kv, 0, len(counts))
			for k, v := range counts {
				all = append(all, kv{k, v})
			}
			sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
			if len(all) == 0 {
				return fmt.Errorf("no groups")
			}
			return nil
		})
		if err != nil {
			return err
		}
		row(field, fast.Round(time.Microsecond).String(), slow.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(slow)/float64(fast)))
	}
	fmt.Println("\n(paper: counts[elements[row]]++ answers Query 1 in 20ms where hash-based")
	fmt.Println(" backends need seconds; for very high cardinality the group bookkeeping")
	fmt.Println(" dominates both — 'for Query 3 the difference is basically negligible')")
	return nil
}

// runSkipping isolates the Section 2.2 contribution: the same drill-down
// queries with chunk classification enabled and disabled.
func runSkipping(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 200
	if chunk < 500 {
		chunk = 500
	}
	opts := colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     chunk,
		OptimizeElements: true,
	}
	mk := func(disable bool) (*exec.Engine, error) {
		s, err := colstore.FromTable(tbl, opts)
		if err != nil {
			return nil, err
		}
		return exec.New(s, exec.Options{DisableSkipping: disable, Parallelism: cfg.parallelism}), nil
	}
	on, err := mk(false)
	if err != nil {
		return err
	}
	off, err := mk(true)
	if err != nil {
		return err
	}
	queries := []string{
		`SELECT user, COUNT(*) FROM data WHERE country IN ("at") GROUP BY user;`,
		`SELECT user, COUNT(*) FROM data WHERE country IN ("us") GROUP BY user;`,
		`SELECT date(timestamp), COUNT(*) FROM data WHERE table_name IN ("none.such") GROUP BY date(timestamp);`,
	}
	// Materialize virtual fields once on both engines so the one-time
	// date(timestamp) cost does not pollute the comparison (the paper's
	// footnote 4 makes the same assumption).
	for _, q := range queries {
		if _, err := on.Query(q); err != nil {
			return err
		}
		if _, err := off.Query(q); err != nil {
			return err
		}
	}
	row("query", "skip lat", "full lat", "skip rows", "full rows")
	for i, q := range queries {
		lat1, err := measure(cfg.reps, func() error { _, err := on.Query(q); return err })
		if err != nil {
			return err
		}
		lat2, err := measure(cfg.reps, func() error { _, err := off.Query(q); return err })
		if err != nil {
			return err
		}
		r1, err := on.Query(q)
		if err != nil {
			return err
		}
		r2, err := off.Query(q)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("drill %d", i+1),
			lat1.Round(time.Microsecond).String(), lat2.Round(time.Microsecond).String(),
			fmt.Sprint(r1.Stats.RowsScanned), fmt.Sprint(r2.Stats.RowsScanned))
	}
	return nil
}

// runPartitionOrder shows the Section 6 claim that choosing 3-5 natural
// key fields "is quite straightforward": skip rates under different
// partition keys for the same drill-down stream.
func runPartitionOrder(cfg config) error {
	tbl := dataset(cfg)
	chunk := cfg.rows / 200
	if chunk < 500 {
		chunk = 500
	}
	keys := [][]string{
		{"country", "table_name"},
		{"table_name", "country"},
		{"user"},
		nil, // no partitioning
	}
	clicks := workload.DrillDownSession(tbl, workload.SessionSpec{Seed: cfg.seed, Clicks: 8, QueriesPerClick: 10})
	row("partition key", "skipped", "cached", "scanned")
	for _, key := range keys {
		s, err := colstore.FromTable(tbl, colstore.Options{
			PartitionFields: key, MaxChunkRows: chunk, OptimizeElements: true,
		})
		if err != nil {
			return err
		}
		engine := exec.New(s, exec.Options{ResultCacheBytes: 32 << 20, Parallelism: cfg.parallelism})
		for _, click := range clicks {
			for _, q := range click.Queries {
				if _, err := engine.Query(q); err != nil {
					return err
				}
			}
		}
		st := engine.Stats()
		total := float64(st.RowsTotal)
		label := strings.Join(key, ",")
		if label == "" {
			label = "<none>"
		}
		row(label,
			fmt.Sprintf("%.1f%%", 100*float64(st.RowsSkipped)/total),
			fmt.Sprintf("%.1f%%", 100*float64(st.RowsCached)/total),
			fmt.Sprintf("%.1f%%", 100*float64(st.RowsScanned)/total))
	}
	fmt.Println("\n(paper: most restrictions correlate with the natural key; production skips ~92%)")
	return nil
}
