package powerdrill

import (
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	tbl := GenerateQueryLogs(5000, 42)
	store, err := Build(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
		StringDict:       StringDictTrie,
		ResultCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.NumRows() != 5000 || store.NumChunks() < 2 {
		t.Fatalf("rows=%d chunks=%d", store.NumRows(), store.NumChunks())
	}
	res, err := store.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Columns) != 2 {
		t.Fatalf("result = %+v", res)
	}
	var total int64
	full, err := store.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range full.Rows {
		total += row[1].Int()
	}
	if total != 5000 {
		t.Errorf("counts sum to %d, want 5000", total)
	}
}

func TestPublicAPIDrillDownStats(t *testing.T) {
	tbl := GenerateQueryLogs(10_000, 7)
	store, err := Build(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Query(`SELECT user, COUNT(*) AS c FROM data WHERE country IN ("at") GROUP BY user ORDER BY c DESC LIMIT 10;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunksSkipped == 0 {
		t.Error("drill-down query skipped nothing")
	}
}

func TestPublicAPIMemoryAndPersistence(t *testing.T) {
	tbl := GenerateQueryLogs(3000, 1)
	store, err := Build(tbl, Options{OptimizeElements: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.Memory("country")
	if err != nil || m.Total() <= 0 {
		t.Fatalf("Memory = %+v, %v", m, err)
	}
	dir := t.TempDir()
	if err := store.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	back, bytesRead, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bytesRead <= 0 {
		t.Error("Open reported no bytes read")
	}
	a, err := store.Query(`SELECT country, COUNT(*) FROM data GROUP BY country ORDER BY country ASC;`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Query(`SELECT country, COUNT(*) FROM data GROUP BY country ORDER BY country ASC;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("persisted store answers differently")
	}
	for i := range a.Rows {
		if !a.Rows[i][0].Equal(b.Rows[i][0]) || !a.Rows[i][1].Equal(b.Rows[i][1]) {
			t.Fatal("persisted store row mismatch")
		}
	}
}

func TestPublicAPICluster(t *testing.T) {
	tbl := GenerateQueryLogs(8000, 3)
	c, err := NewCluster(tbl, ClusterOptions{
		Shards:   4,
		Replicas: 2,
		Store: Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     500,
			OptimizeElements: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT country, COUNT(*) AS c, AVG(latency) FROM data GROUP BY country ORDER BY c DESC LIMIT 5;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty distributed result")
	}
	if st := c.Stats(); st.Queries != 1 || st.SubQueries != 4 {
		t.Errorf("cluster stats = %+v", st)
	}
	c.InjectStragglers(0.5, 50*time.Millisecond, 1)
	start := time.Now()
	if _, err := c.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("straggler query took %v", elapsed)
	}
}

func TestPublicAPIBuildFromScratch(t *testing.T) {
	tbl := NewTable("sales")
	tbl.AddStringColumn("region", []string{"eu", "us", "eu", "apac"})
	tbl.AddInt64Column("amount", []int64{10, 20, 30, 40})
	tbl.AddFloat64Column("rate", []float64{0.1, 0.2, 0.3, 0.4})
	store, err := Build(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Query(`SELECT region, SUM(amount) AS s FROM sales GROUP BY region ORDER BY s DESC, region ASC;`)
	if err != nil {
		t.Fatal(err)
	}
	// eu and apac tie at 40; the region tiebreak puts apac first.
	if len(res.Rows) != 3 || res.Rows[0][0].Str() != "apac" || res.Rows[0][1].Int() != 40 ||
		res.Rows[1][0].Str() != "eu" || res.Rows[2][1].Int() != 20 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestMemoryBudgetedOpenAcceptance is the PR's acceptance criterion: a
// store opened with MemoryBudgetBytes at ~25% of its resident footprint
// answers the full query-log workload bit-for-bit identically to an
// unbudgeted store, stays under the budget (± the pinned working set) per
// the manager's accounting, and shows cold loads on first touch but zero
// on a warm repeat.
func TestMemoryBudgetedOpenAcceptance(t *testing.T) {
	tbl := GenerateQueryLogs(6000, 2012)
	built, err := Build(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	footprint, err := built.Memory(built.Columns()...)
	if err != nil {
		t.Fatal(err)
	}
	budget := footprint.Total() / 4

	budgeted, _, err := Open(dir, Options{MemoryBudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	unbudgeted, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`,
		`SELECT table_name, COUNT(*) AS c FROM data GROUP BY table_name ORDER BY c DESC, table_name ASC LIMIT 10;`,
		`SELECT user, SUM(latency) AS s FROM data GROUP BY user ORDER BY s DESC, user ASC LIMIT 10;`,
		`SELECT date(timestamp), COUNT(*) AS c FROM data GROUP BY date(timestamp) ORDER BY date(timestamp) ASC LIMIT 14;`,
		`SELECT country, table_name, SUM(latency) AS s FROM data WHERE latency > 200 GROUP BY country, table_name ORDER BY s DESC, country ASC, table_name ASC LIMIT 15;`,
		`SELECT table_name, MAX(latency) AS m FROM data WHERE country IN ("US", "JP") GROUP BY table_name ORDER BY m DESC, table_name ASC LIMIT 10;`,
	}
	sawCold := false
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			want, err := unbudgeted.Query(q)
			if err != nil {
				t.Fatalf("unbudgeted %s: %v", q, err)
			}
			got, err := budgeted.Query(q)
			if err != nil {
				t.Fatalf("budgeted %s: %v", q, err)
			}
			if len(want.Rows) != len(got.Rows) {
				t.Fatalf("%s: %d vs %d rows", q, len(want.Rows), len(got.Rows))
			}
			for i := range want.Rows {
				for j := range want.Rows[i] {
					if !want.Rows[i][j].Equal(got.Rows[i][j]) {
						t.Fatalf("%s: row %d col %d: %v != %v", q, i, j, want.Rows[i][j], got.Rows[i][j])
					}
				}
			}
			if got.Stats.ColdLoads > 0 {
				sawCold = true
			}
			st, ok := budgeted.MemStats()
			if !ok {
				t.Fatal("budgeted store has no MemStats")
			}
			if st.ResidentBytes-st.PinnedBytes > budget {
				t.Fatalf("evictable resident %d exceeds budget %d", st.ResidentBytes-st.PinnedBytes, budget)
			}
		}
	}
	if !sawCold {
		t.Fatal("no cold loads under a 25% budget")
	}
	st, _ := budgeted.MemStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 25%% budget: %+v", st)
	}

	// Cold on first touch, zero cold on a warm repeat (unbudgeted store
	// retains everything it loaded).
	warmQ := queries[0]
	repeat, err := unbudgeted.Query(warmQ)
	if err != nil {
		t.Fatal(err)
	}
	if repeat.Stats.ColdLoads != 0 {
		t.Fatalf("warm repeat reported %d cold loads", repeat.Stats.ColdLoads)
	}
	if ms, ok := unbudgeted.MemStats(); !ok || ms.ColdLoads == 0 || ms.Evictions != 0 {
		t.Fatalf("unbudgeted MemStats = %+v, ok=%v", ms, ok)
	}
}

// TestOpenClusterLazyShards persists shards and reassembles them into a
// lazily loaded cluster sharing one memory budget, checking answers against
// a single resident store over the same data.
func TestOpenClusterLazyShards(t *testing.T) {
	tbl := GenerateQueryLogs(6000, 9)
	whole, err := Build(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for i, shard := range tbl.Shard(3) {
		s, err := Build(shard, Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     500,
			OptimizeElements: true,
		})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		dir := t.TempDir()
		if err := s.Save(dir, "zippy"); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		dirs = append(dirs, dir)
	}
	c, err := OpenCluster(dirs, ClusterOptions{
		Replicas: 2,
		Store:    Options{MemoryBudgetBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC, country ASC LIMIT 10;`,
		`SELECT table_name, SUM(latency) AS s FROM data GROUP BY table_name ORDER BY s DESC, table_name ASC LIMIT 10;`,
	} {
		want, err := whole.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Rows) != len(got.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(want.Rows), len(got.Rows))
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if !want.Rows[i][j].Equal(got.Rows[i][j]) {
					t.Fatalf("%s: row %d col %d: %v != %v", q, i, j, want.Rows[i][j], got.Rows[i][j])
				}
			}
		}
	}
	st, ok := c.MemStats()
	if !ok || st.ColdLoads == 0 {
		t.Fatalf("cluster MemStats = %+v, ok=%v", st, ok)
	}
}
