package powerdrill

import (
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	tbl := GenerateQueryLogs(5000, 42)
	store, err := Build(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
		StringDict:       StringDictTrie,
		ResultCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.NumRows() != 5000 || store.NumChunks() < 2 {
		t.Fatalf("rows=%d chunks=%d", store.NumRows(), store.NumChunks())
	}
	res, err := store.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Columns) != 2 {
		t.Fatalf("result = %+v", res)
	}
	var total int64
	full, err := store.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range full.Rows {
		total += row[1].Int()
	}
	if total != 5000 {
		t.Errorf("counts sum to %d, want 5000", total)
	}
}

func TestPublicAPIDrillDownStats(t *testing.T) {
	tbl := GenerateQueryLogs(10_000, 7)
	store, err := Build(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Query(`SELECT user, COUNT(*) AS c FROM data WHERE country IN ("at") GROUP BY user ORDER BY c DESC LIMIT 10;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunksSkipped == 0 {
		t.Error("drill-down query skipped nothing")
	}
}

func TestPublicAPIMemoryAndPersistence(t *testing.T) {
	tbl := GenerateQueryLogs(3000, 1)
	store, err := Build(tbl, Options{OptimizeElements: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.Memory("country")
	if err != nil || m.Total() <= 0 {
		t.Fatalf("Memory = %+v, %v", m, err)
	}
	dir := t.TempDir()
	if err := store.Save(dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	back, bytesRead, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bytesRead <= 0 {
		t.Error("Open reported no bytes read")
	}
	a, err := store.Query(`SELECT country, COUNT(*) FROM data GROUP BY country ORDER BY country ASC;`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Query(`SELECT country, COUNT(*) FROM data GROUP BY country ORDER BY country ASC;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("persisted store answers differently")
	}
	for i := range a.Rows {
		if !a.Rows[i][0].Equal(b.Rows[i][0]) || !a.Rows[i][1].Equal(b.Rows[i][1]) {
			t.Fatal("persisted store row mismatch")
		}
	}
}

func TestPublicAPICluster(t *testing.T) {
	tbl := GenerateQueryLogs(8000, 3)
	c, err := NewCluster(tbl, ClusterOptions{
		Shards:   4,
		Replicas: 2,
		Store: Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     500,
			OptimizeElements: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT country, COUNT(*) AS c, AVG(latency) FROM data GROUP BY country ORDER BY c DESC LIMIT 5;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty distributed result")
	}
	if st := c.Stats(); st.Queries != 1 || st.SubQueries != 4 {
		t.Errorf("cluster stats = %+v", st)
	}
	c.InjectStragglers(0.5, 50*time.Millisecond, 1)
	start := time.Now()
	if _, err := c.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("straggler query took %v", elapsed)
	}
}

func TestPublicAPIBuildFromScratch(t *testing.T) {
	tbl := NewTable("sales")
	tbl.AddStringColumn("region", []string{"eu", "us", "eu", "apac"})
	tbl.AddInt64Column("amount", []int64{10, 20, 30, 40})
	tbl.AddFloat64Column("rate", []float64{0.1, 0.2, 0.3, 0.4})
	store, err := Build(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Query(`SELECT region, SUM(amount) AS s FROM sales GROUP BY region ORDER BY s DESC, region ASC;`)
	if err != nil {
		t.Fatal(err)
	}
	// eu and apac tie at 40; the region tiebreak puts apac first.
	if len(res.Rows) != 3 || res.Rows[0][0].Str() != "apac" || res.Rows[0][1].Int() != 40 ||
		res.Rows[1][0].Str() != "eu" || res.Rows[2][1].Int() != 20 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
