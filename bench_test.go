// Benchmarks regenerating the paper's tables and figures; one benchmark
// per experiment, with byte footprints attached via b.ReportMetric so the
// memory columns of the tables appear in -benchmem output. cmd/pdbench
// prints the same data as formatted tables at larger scales.
package powerdrill

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"powerdrill/internal/backends"
	"powerdrill/internal/cache"
	"powerdrill/internal/cluster"
	"powerdrill/internal/colstore"
	"powerdrill/internal/compress"
	"powerdrill/internal/dict"
	"powerdrill/internal/exec"
	"powerdrill/internal/prodsim"
	"powerdrill/internal/reorder"
	"powerdrill/internal/sketch"
	"powerdrill/internal/table"
	"powerdrill/internal/workload"
)

// benchRows is the dataset size benchmarks use; the paper uses 5M rows,
// pdbench defaults to 1M, and `go test -bench` keeps iterations fast at
// 200K. Shapes, not absolute numbers, are the reproduction target.
const benchRows = 200_000

var benchTable *table.Table

func dataset(b *testing.B) *table.Table {
	b.Helper()
	if benchTable == nil {
		benchTable = workload.QueryLogs(workload.LogsSpec{Rows: benchRows, Seed: 2012})
	}
	return benchTable
}

var paperQueries = []struct {
	name string
	sql  string
	cols []string
}{
	{"Query1", `SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`, []string{"country"}},
	{"Query2", `SELECT date(timestamp) as d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 10;`, []string{"timestamp", "latency"}},
	{"Query3", `SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;`, []string{"table_name"}},
}

// BenchmarkTable1Basic measures the paper's "Basic" row of Table 1: the
// three queries on the in-memory double-dictionary layout.
func BenchmarkTable1Basic(b *testing.B) {
	tbl := dataset(b)
	store, err := colstore.FromTable(tbl, colstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	engine := exec.New(store, exec.Options{})
	for _, q := range paperQueries {
		b.Run(q.name, func(b *testing.B) {
			m, err := store.MemoryFor(q.cols...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := engine.Query(q.sql); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.Total())/1e6, "dataMB")
		})
	}
}

// BenchmarkTable1Baselines measures the CSV, record-io and Dremel rows of
// Table 1 (full scans over on-disk formats).
func BenchmarkTable1Baselines(b *testing.B) {
	tbl := dataset(b)
	dir := b.TempDir()
	csvPath := filepath.Join(dir, "data.csv")
	csvSchema, err := backends.WriteCSV(tbl, csvPath)
	if err != nil {
		b.Fatal(err)
	}
	recPath := filepath.Join(dir, "data.rec")
	recSchema, err := backends.WriteRecordIO(tbl, recPath)
	if err != nil {
		b.Fatal(err)
	}
	dremel, err := backends.BuildDremel(tbl, filepath.Join(dir, "dremel"), 8192)
	if err != nil {
		b.Fatal(err)
	}
	for _, bk := range []backends.Backend{
		backends.NewCSV(csvPath, csvSchema),
		backends.NewRecordIO(recPath, recSchema),
		dremel,
	} {
		for _, q := range paperQueries {
			b.Run(bk.Name()+"/"+q.name, func(b *testing.B) {
				bytes, err := bk.DataBytes(q.cols)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					if _, err := backends.Query(bk, q.sql); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(bytes)/1e6, "dataMB")
			})
		}
	}
}

// BenchmarkTable4Pipeline builds every step of the Section 3 optimization
// sequence and reports the Table 4 per-query footprints as metrics; the
// measured time is the import cost of each layout.
func BenchmarkTable4Pipeline(b *testing.B) {
	tbl := dataset(b)
	part := []string{"country", "table_name"}
	variants := []struct {
		name string
		opts colstore.Options
	}{
		{"Basic", colstore.Options{}},
		{"Chunks", colstore.Options{PartitionFields: part, MaxChunkRows: 5000}},
		{"OptCols", colstore.Options{PartitionFields: part, MaxChunkRows: 5000, OptimizeElements: true}},
		{"OptDicts", colstore.Options{PartitionFields: part, MaxChunkRows: 5000, OptimizeElements: true, StringDict: colstore.StringDictTrie}},
		{"Reorder", colstore.Options{PartitionFields: part, MaxChunkRows: 5000, OptimizeElements: true, StringDict: colstore.StringDictTrie, Reorder: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var store *colstore.Store
			var err error
			for i := 0; i < b.N; i++ {
				store, err = colstore.FromTable(tbl, v.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			for qi, q := range paperQueries {
				m, err := store.MemoryFor(q.cols...)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Total())/1e6, fmt.Sprintf("q%dMB", qi+1))
			}
		})
	}
}

// BenchmarkTable3Zippy compresses each layout's column set, the Table 3
// measurement (compressed footprints; throughput is the measured time).
func BenchmarkTable3Zippy(b *testing.B) {
	tbl := dataset(b)
	zippy, err := compress.ByName("zippy")
	if err != nil {
		b.Fatal(err)
	}
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields: []string{"country", "table_name"}, MaxChunkRows: 5000,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range paperQueries {
		b.Run(q.name, func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, cn := range q.cols {
					total += store.Column(cn).Compressed(zippy).Total()
				}
			}
			b.ReportMetric(float64(total)/1e6, "zipMB")
		})
	}
}

// BenchmarkTrieDict is the Section 3 trie measurement: build cost of the
// 4-bit trie with the array/trie footprints as metrics.
func BenchmarkTrieDict(b *testing.B) {
	tbl := dataset(b)
	store, err := colstore.FromTable(tbl, colstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	arr := store.Column("table_name").Dict.(*dict.StringArray)
	vals := arr.Strings()
	var trie *dict.Trie
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie = dict.NewTrie(vals)
	}
	b.StopTimer()
	b.ReportMetric(float64(arr.MemoryBytes())/1e6, "arrayMB")
	b.ReportMetric(float64(trie.MemoryBytes())/1e6, "trieMB")
}

// BenchmarkReorder measures the Section 3 reordering step (the sort) and
// reports the compressed elements+chunk-dicts before/after as metrics.
func BenchmarkReorder(b *testing.B) {
	tbl := dataset(b)
	part := []string{"country", "table_name"}
	zippy, err := compress.ByName("zippy")
	if err != nil {
		b.Fatal(err)
	}
	opts := colstore.Options{PartitionFields: part, MaxChunkRows: 5000, OptimizeElements: true}
	before, err := colstore.FromTable(tbl, opts)
	if err != nil {
		b.Fatal(err)
	}
	opts.Reorder = true
	after, err := colstore.FromTable(tbl, opts)
	if err != nil {
		b.Fatal(err)
	}
	elems := func(s *colstore.Store) (total int64) {
		for _, q := range paperQueries {
			for _, cn := range q.cols {
				cb := s.Column(cn).Compressed(zippy)
				total += cb.Elements + cb.ChunkDicts
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		reorder.Lexicographic(tbl, part)
	}
	b.ReportMetric(float64(elems(before))/1e6, "beforeMB")
	b.ReportMetric(float64(elems(after))/1e6, "afterMB")
}

// BenchmarkFigure5 runs the production simulation behind Figure 5 and the
// Section 6 split, reporting the headline percentages as metrics.
func BenchmarkFigure5(b *testing.B) {
	var rep *prodsim.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = prodsim.Run(prodsim.Config{
			Rows: 50_000, Servers: 2, Sessions: 2, ClicksPerSession: 5,
			QueriesPerClick: 10, Seed: 2012,
			Store: colstore.Options{
				PartitionFields:  []string{"country", "table_name"},
				MaxChunkRows:     1000,
				OptimizeElements: true,
			},
			EvictProb: 0.15,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.SkippedPct, "skipped%")
	b.ReportMetric(rep.CachedPct, "cached%")
	b.ReportMetric(rep.ScannedPct, "scanned%")
	b.ReportMetric(rep.NoDiskPct, "nodisk%")
}

// BenchmarkCountDistinct measures the Section 5 sketch on the
// high-cardinality field and reports its accuracy.
func BenchmarkCountDistinct(b *testing.B) {
	tbl := dataset(b)
	names := tbl.Column("table_name").Strs
	exact := map[string]bool{}
	for _, v := range names {
		exact[v] = true
	}
	var est int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sketch.NewKMV(2048)
		for _, v := range names {
			k.AddString(v)
		}
		est = k.Estimate()
	}
	b.StopTimer()
	b.ReportMetric(float64(est), "estimate")
	b.ReportMetric(float64(len(exact)), "exact")
}

// BenchmarkCodecs measures every registered codec on real column bytes —
// the Section 5 comparison (zippy vs lzoish vs zlib vs huffman-only).
func BenchmarkCodecs(b *testing.B) {
	tbl := dataset(b)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields: []string{"country", "table_name"}, MaxChunkRows: 5000,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	var payload []byte
	col := store.Column("table_name")
	for _, ch := range col.Chunks {
		payload = ch.Elems.AppendBytes(payload)
	}
	for _, name := range compress.Names() {
		if name == "rle" {
			continue
		}
		codec, err := compress.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		comp := codec.Compress(nil, payload)
		b.Run(name+"/compress", func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			b.ReportMetric(float64(len(payload))/float64(len(comp)), "ratio")
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = codec.Compress(buf[:0], payload)
			}
		})
		b.Run(name+"/decompress", func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf, err = codec.Decompress(buf[:0], comp)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCachePolicies compares LRU, 2Q and ARC under the Section 5
// pathology: a hot working set polluted by one-time scans.
func BenchmarkCachePolicies(b *testing.B) {
	for _, mk := range []func() cache.Cache{
		func() cache.Cache { return cache.NewLRU(100 * 64) },
		func() cache.Cache { return cache.NewTwoQ(100 * 64) },
		func() cache.Cache { return cache.NewARC(100 * 64) },
	} {
		c := mk()
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < 60; j++ {
					key := fmt.Sprintf("hot-%d", j)
					if _, ok := c.Get(key); !ok {
						c.Put(key, j, 64)
					}
				}
				if i%5 == 4 {
					for j := 0; j < 500; j++ {
						key := fmt.Sprintf("scan-%d-%d", i, j)
						c.Put(key, j, 64)
					}
				}
			}
			b.ReportMetric(c.Stats().HitRate(), "hitRate")
		})
	}
}

// BenchmarkDistributed measures the Section 4 tree over increasing shard
// counts with replication.
func BenchmarkDistributed(b *testing.B) {
	tbl := dataset(b)
	for _, shards := range []int{1, 4, 8} {
		c, err := cluster.NewLocal(tbl, cluster.Options{
			Shards: shards, Replicas: 2,
			Store: colstore.Options{
				PartitionFields:  []string{"country", "table_name"},
				MaxChunkRows:     5000,
				OptimizeElements: true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Query(`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkippingAblation isolates Section 2.2: the same selective query
// with chunk classification on and off.
func BenchmarkSkippingAblation(b *testing.B) {
	tbl := dataset(b)
	opts := colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     2000,
		OptimizeElements: true,
	}
	q := `SELECT user, COUNT(*) FROM data WHERE country IN ("at") GROUP BY user;`
	for _, disable := range []bool{false, true} {
		store, err := colstore.FromTable(tbl, opts)
		if err != nil {
			b.Fatal(err)
		}
		engine := exec.New(store, exec.Options{DisableSkipping: disable})
		name := "skipping"
		if disable {
			name = "fullscan"
		}
		b.Run(name, func(b *testing.B) {
			var rows int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				rows = res.Stats.RowsScanned
			}
			b.ReportMetric(float64(rows), "rowsScanned")
		})
	}
}

// BenchmarkGroupByAblation contrasts the counts-array inner loop with a
// generic hash group-by over the same data — the Section 2.5 explanation.
func BenchmarkGroupByAblation(b *testing.B) {
	tbl := dataset(b)
	store, err := colstore.FromTable(tbl, colstore.Options{OptimizeElements: true})
	if err != nil {
		b.Fatal(err)
	}
	engine := exec.New(store, exec.Options{})
	for _, field := range []string{"country", "table_name"} {
		q := fmt.Sprintf(`SELECT %s, COUNT(*) as c FROM data GROUP BY %s ORDER BY c DESC LIMIT 10;`, field, field)
		b.Run("countsarray/"+field, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		col := tbl.Column(field)
		b.Run("hashtable/"+field, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counts := make(map[string]int64, 1024)
				for _, v := range col.Strs {
					counts[v]++
				}
			}
		})
	}
}

// BenchmarkResultCache measures the fully-active chunk cache of Section 6:
// the second run of an identical query served from cached partials.
func BenchmarkResultCache(b *testing.B) {
	tbl := dataset(b)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     5000,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := `SELECT country, COUNT(*) FROM data GROUP BY country;`
	cold := exec.New(store, exec.Options{})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cold.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := exec.New(store, exec.Options{ResultCacheBytes: 64 << 20})
	if _, err := warm.Query(q); err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := warm.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClick is the headline: one mouse click = 20 drill-down queries
// over a replicated cluster; cells/second is the reported metric.
func BenchmarkClick(b *testing.B) {
	tbl := dataset(b)
	c, err := cluster.NewLocal(tbl, cluster.Options{
		Shards: 4, Replicas: 2,
		Store: colstore.Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     5000,
			OptimizeElements: true,
		},
		Engine: exec.Options{ResultCacheBytes: 32 << 20},
	})
	if err != nil {
		b.Fatal(err)
	}
	clicks := workload.DrillDownSession(tbl, workload.SessionSpec{Seed: 2012, Clicks: 2, QueriesPerClick: 20})
	b.ResetTimer()
	var cells int64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		click := clicks[i%len(clicks)]
		start := time.Now()
		for _, q := range click.Queries {
			res, err := c.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			cells += res.Stats.CellsCovered
		}
		elapsed += time.Since(start)
	}
	if elapsed > 0 {
		b.ReportMetric(float64(cells)/elapsed.Seconds(), "cells/s")
	}
}

// BenchmarkParallelScan measures the parallel chunk-execution pipeline on a
// Table-1-style workload: the same queries over the same chunked store at
// Parallelism 1 (the sequential engine) and at all cores. No result cache,
// so every iteration scans every chunk — the quantity being measured is the
// fan-out of classify/mask/aggregate itself. Setup asserts both engines
// return identical results before any timing.
func BenchmarkParallelScan(b *testing.B) {
	tbl := dataset(b)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     2000,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := []string{
		`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`,
		`SELECT table_name, COUNT(*) as c, SUM(latency) as s FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;`,
		`SELECT country, COUNT(DISTINCT user) as u FROM data WHERE latency > 20 GROUP BY country ORDER BY u DESC LIMIT 10;`,
	}
	fingerprint := func(e *exec.Engine) string {
		var out string
		for _, q := range queries {
			res, err := e.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range res.Rows {
				for _, v := range row {
					out += v.String() + "|"
				}
				out += "\n"
			}
		}
		return out
	}
	seqFP := fingerprint(exec.New(store, exec.Options{Parallelism: 1}))
	settings := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		settings = append(settings, n)
	}
	for _, par := range settings {
		engine := exec.New(store, exec.Options{Parallelism: par})
		if fp := fingerprint(engine); fp != seqFP {
			b.Fatalf("parallelism=%d returns different results than sequential", par)
		}
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := engine.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkVectorizedScan is the kernel acceptance benchmark: the same
// restricted GROUP BY aggregation through the scalar reference path and the
// vectorized kernels, swept across restriction selectivities. Needle values
// planted at exact row fractions in an unsorted high-cardinality column
// make the selectivity precise; the dataset and queries mirror
// `pdbench -exp kernels`. Setup asserts both paths return identical rows
// before any timing, and each subtest reports rows/s.
func BenchmarkVectorizedScan(b *testing.B) {
	const chunkRows = benchRows / 100
	rows := benchRows
	grp := make([]string, rows)
	metric := make([]int64, rows)
	tag := make([]string, rows)
	shard := make([]string, rows)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		grp[i] = fmt.Sprintf("g%02d", rng.Intn(16))
		metric[i] = int64(rng.Intn(1000))
		shard[i] = fmt.Sprintf("s%03d", i/chunkRows)
		switch {
		case i%10 == 5:
			tag[i] = "needle_01"
		case i%100 == 1:
			tag[i] = "needle_001"
		case i%1000 == 3:
			tag[i] = "needle_0001"
		default:
			tag[i] = fmt.Sprintf("t%05d", rng.Intn(20000))
		}
	}
	tbl := table.New("data").
		AddStringColumn("grp", grp).
		AddInt64Column("metric", metric).
		AddStringColumn("tag", tag).
		AddStringColumn("shard", shard)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"shard"},
		MaxChunkRows:     chunkRows,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}

	scalar := exec.New(store, exec.Options{Parallelism: 1, DisableKernels: true})
	kernel := exec.New(store, exec.Options{Parallelism: 1})
	sweep := []struct {
		label string
		where string
	}{
		{"sel=0.001", ` WHERE tag = "needle_0001"`},
		{"sel=0.01", ` WHERE tag = "needle_001"`},
		{"sel=0.1", ` WHERE tag = "needle_01"`},
		{"sel=1.0", ``},
	}
	for _, pt := range sweep {
		q := fmt.Sprintf(`SELECT grp, COUNT(*) AS c, SUM(metric) AS s FROM data%s GROUP BY grp ORDER BY c DESC LIMIT 20;`, pt.where)
		sres, err := scalar.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		kres, err := kernel.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if fmt.Sprint(sres.Rows) != fmt.Sprint(kres.Rows) {
			b.Fatalf("%s: kernels diverge from the scalar path", pt.label)
		}
		for _, path := range []struct {
			name   string
			engine *exec.Engine
		}{{"scalar", scalar}, {"kernel", kernel}} {
			b.Run(pt.label+"/"+path.name, func(b *testing.B) {
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if _, err := path.engine.Query(q); err != nil {
						b.Fatal(err)
					}
				}
				if el := time.Since(start); el > 0 {
					b.ReportMetric(float64(rows)*float64(b.N)/el.Seconds(), "rows/s")
				}
			})
		}
	}
}
