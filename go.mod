module powerdrill

go 1.22
