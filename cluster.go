package powerdrill

import (
	"net"
	"time"

	"powerdrill/internal/cluster"
	"powerdrill/internal/memmgr"
)

// ClusterOptions configures distributed execution (paper, Section 4).
type ClusterOptions struct {
	// Shards is the number of data shards (the paper keeps 5–7 million
	// rows per shard). Default 8.
	Shards int
	// Fanout of the execution tree (default 8).
	Fanout int
	// Replicas per sub-query: 2 enables the paper's primary+replica
	// scheme (default), 1 disables it.
	Replicas int
	// Store configures the per-shard imports.
	Store Options
	// Seed drives shard placement.
	Seed int64
}

// Cluster executes queries over sharded, replicated leaf servers through a
// multi-level aggregation tree.
type Cluster struct {
	inner *cluster.Cluster
	// mgr is the shared memory manager of clusters assembled with
	// OpenCluster; nil otherwise.
	mgr *memmgr.Manager
}

// NewCluster shards a raw table and builds an in-process cluster.
func NewCluster(tbl *Table, opts ClusterOptions) (*Cluster, error) {
	c, err := cluster.NewLocal(tbl, cluster.Options{
		Shards:   opts.Shards,
		Fanout:   opts.Fanout,
		Replicas: opts.Replicas,
		Store:    opts.Store.storeOptions(),
		Engine:   opts.Store.engineOptions(),
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c}, nil
}

// OpenCluster assembles an in-process cluster from shard directories
// persisted with Store.Save, opening every shard lazily: column data loads
// on first touch and all shards share one memory budget
// (opts.Store.MemoryBudgetBytes, 0 = unlimited) and one admission gate —
// the whole process stays within a single resident-byte and worker budget
// however many shards it serves. Replicas open the same directory and
// share resident columns.
func OpenCluster(shardDirs []string, opts ClusterOptions) (*Cluster, error) {
	if err := validateMemoryPolicy(opts.Store.MemoryPolicy); err != nil {
		return nil, err
	}
	mgr := memmgr.New(opts.Store.MemoryBudgetBytes, opts.Store.MemoryPolicy)
	c, err := cluster.OpenShards(shardDirs, cluster.Options{
		Fanout:   opts.Fanout,
		Replicas: opts.Replicas,
		Engine:   opts.Store.engineOptions(),
	}, mgr)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c, mgr: mgr}, nil
}

// MemStats reports the shared memory manager's accounting for clusters
// assembled with OpenCluster; ok is false otherwise.
func (c *Cluster) MemStats() (MemoryStats, bool) {
	if c.mgr == nil {
		return MemoryStats{}, false
	}
	return c.mgr.Stats(), true
}

// ConnectCluster assembles a cluster from remote leaf servers started with
// ServeShard (cmd/pdserver); addrSets[i] lists the addresses of shard i's
// replicas.
func ConnectCluster(addrSets [][]string, opts ClusterOptions) (*Cluster, error) {
	var leafSets [][]cluster.Leaf
	for _, addrs := range addrSets {
		var replicas []cluster.Leaf
		for _, a := range addrs {
			leaf, err := cluster.Dial(a)
			if err != nil {
				return nil, err
			}
			replicas = append(replicas, leaf)
		}
		leafSets = append(leafSets, replicas)
	}
	return &Cluster{inner: cluster.FromLeaves(leafSets, cluster.Options{
		Shards:   len(addrSets),
		Fanout:   opts.Fanout,
		Replicas: opts.Replicas,
	})}, nil
}

// Query runs a SQL query across the cluster: leaves aggregate their
// shards, inner levels merge, the root finalizes ORDER BY and LIMIT.
func (c *Cluster) Query(sqlText string) (*Result, error) {
	res, err := c.inner.Query(sqlText)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: res.Columns, Rows: res.Rows, Stats: res.Stats}, nil
}

// ClusterStats counts distributed execution events.
type ClusterStats = cluster.Stats

// Stats returns cumulative distributed-execution counters.
func (c *Cluster) Stats() ClusterStats { return c.inner.Stats() }

// InjectStragglers marks a random fraction of leaf servers as slow by
// delay, for tail-latency experiments; replicas hide them.
func (c *Cluster) InjectStragglers(frac float64, delay time.Duration, seed int64) {
	c.inner.InjectStragglers(frac, delay, seed)
}

// ServeShard serves a store as a leaf server on the listener; it blocks.
// Pair with ConnectCluster. The store's own engine answers the RPCs, so
// local queries, remote partials, and the /statz counters all share one
// result cache and one set of statistics.
func ServeShard(l net.Listener, s *Store) error {
	return cluster.Serve(l, s.engine)
}
