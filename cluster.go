package powerdrill

import (
	"context"
	"net"
	"time"

	"powerdrill/internal/cluster"
	"powerdrill/internal/memmgr"
)

// ClusterOptions configures distributed execution (paper, Section 4).
type ClusterOptions struct {
	// Shards is the number of data shards (the paper keeps 5–7 million
	// rows per shard). Default 8.
	Shards int
	// Fanout of the execution tree (default 8).
	Fanout int
	// Replicas per sub-query: 2 enables the paper's primary+replica
	// scheme (default), 1 disables it.
	Replicas int
	// Servers is how many placement servers in-process clusters spread
	// replicas over (default Replicas). With Servers > Replicas some
	// servers start empty — spare capacity Rebalance can move hot
	// shards' replicas onto.
	Servers int
	// Store configures the per-shard imports.
	Store Options
	// Seed drives shard placement.
	Seed int64

	// Deadline bounds each query's wall clock (0 = none). When shards
	// cannot answer in time the cluster serves a partial answer with
	// Result.Coverage < 1 instead of hanging.
	Deadline time.Duration
	// HedgeMultiplier scales the per-shard moving latency estimate into
	// the straggler threshold after which the replica is also asked
	// (default 3; shards with no estimate yet hedge immediately).
	HedgeMultiplier float64
	// HedgeMinDelay clamps the hedge delay from below (default 1ms).
	HedgeMinDelay time.Duration
	// MaxRetries re-dispatches per sub-query beyond the first pass over
	// the replicas (default 2; negative disables).
	MaxRetries int
	// BreakerThreshold consecutive failures open a leaf's circuit breaker
	// (default 3; negative disables); BreakerCooldown (default 1s) is how
	// long an open breaker waits before a half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MinCoverage rejects answers covering less than this fraction of
	// rows (default 0 = serve any partial answer; 1 = all shards or
	// error).
	MinCoverage float64
}

func (o ClusterOptions) clusterOptions() cluster.Options {
	return cluster.Options{
		Shards:           o.Shards,
		Fanout:           o.Fanout,
		Replicas:         o.Replicas,
		Servers:          o.Servers,
		Seed:             o.Seed,
		Deadline:         o.Deadline,
		HedgeMultiplier:  o.HedgeMultiplier,
		HedgeMinDelay:    o.HedgeMinDelay,
		MaxRetries:       o.MaxRetries,
		BreakerThreshold: o.BreakerThreshold,
		BreakerCooldown:  o.BreakerCooldown,
		MinCoverage:      o.MinCoverage,
	}
}

// Cluster executes queries over sharded, replicated leaf servers through a
// multi-level aggregation tree.
type Cluster struct {
	inner *cluster.Cluster
	// mgr is the shared memory manager of clusters assembled with
	// OpenCluster; nil otherwise.
	mgr *memmgr.Manager
}

// NewCluster shards a raw table and builds an in-process cluster.
func NewCluster(tbl *Table, opts ClusterOptions) (*Cluster, error) {
	copts := opts.clusterOptions()
	copts.Store = opts.Store.storeOptions()
	copts.Engine = opts.Store.engineOptions()
	c, err := cluster.NewLocal(tbl, copts)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c}, nil
}

// OpenCluster assembles an in-process cluster from shard directories
// persisted with Store.Save, opening every shard lazily: column data loads
// on first touch and all shards share one memory budget
// (opts.Store.MemoryBudgetBytes, 0 = unlimited) and one admission gate —
// the whole process stays within a single resident-byte and worker budget
// however many shards it serves. Replicas open the same directory and
// share resident columns.
func OpenCluster(shardDirs []string, opts ClusterOptions) (*Cluster, error) {
	if err := validateMemoryPolicy(opts.Store.MemoryPolicy); err != nil {
		return nil, err
	}
	mgr := memmgr.New(opts.Store.MemoryBudgetBytes, opts.Store.MemoryPolicy)
	copts := opts.clusterOptions()
	copts.Engine = opts.Store.engineOptions()
	c, err := cluster.OpenShards(shardDirs, copts, mgr)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c, mgr: mgr}, nil
}

// MemStats reports the shared memory manager's accounting for clusters
// assembled with OpenCluster; ok is false otherwise.
func (c *Cluster) MemStats() (MemoryStats, bool) {
	if c.mgr == nil {
		return MemoryStats{}, false
	}
	return c.mgr.Stats(), true
}

// ConnectCluster assembles a cluster from remote leaf servers started with
// ServeShard (cmd/pdserver); addrSets[i] lists the addresses of shard i's
// replicas. Servers that are down at assembly are not fatal: their leaves
// are dialed lazily on first use, the cluster serves (partial) answers
// without them, and they join automatically once reachable.
func ConnectCluster(addrSets [][]string, opts ClusterOptions) (*Cluster, error) {
	var leafSets [][]cluster.Leaf
	for _, addrs := range addrSets {
		var replicas []cluster.Leaf
		for _, a := range addrs {
			replicas = append(replicas, cluster.NewRemoteLeaf(a))
		}
		leafSets = append(leafSets, replicas)
	}
	copts := opts.clusterOptions()
	copts.Shards = len(addrSets)
	return &Cluster{inner: cluster.FromLeaves(leafSets, copts)}, nil
}

// Query runs a SQL query across the cluster: leaves aggregate their
// shards, inner levels merge, the root finalizes ORDER BY and LIMIT.
// When shards are unreachable within the deadline the answer is partial:
// Result.Coverage reports the fraction of rows it spans.
func (c *Cluster) Query(sqlText string) (*Result, error) {
	return c.QueryContext(context.Background(), sqlText)
}

// QueryContext is Query under a caller-supplied context (deadline or
// cancellation); ClusterOptions.Deadline still applies when set.
func (c *Cluster) QueryContext(ctx context.Context, sqlText string) (*Result, error) {
	res, err := c.inner.QueryContext(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: res.Columns, Rows: res.Rows, Stats: res.Stats, Coverage: res.Coverage}, nil
}

// ClusterStats counts distributed execution events.
type ClusterStats = cluster.Stats

// LeafHealth is one leaf server's health as seen by the coordinator.
type LeafHealth = cluster.LeafHealth

// Stats returns cumulative distributed-execution counters.
func (c *Cluster) Stats() ClusterStats { return c.inner.Stats() }

// Health reports every leaf's circuit-breaker state and failure counts,
// in shard-then-replica order.
func (c *Cluster) Health() []LeafHealth { return c.inner.Health() }

// InjectStragglers marks a random fraction of leaf servers as slow by
// delay, for tail-latency experiments; replicas hide them.
func (c *Cluster) InjectStragglers(frac float64, delay time.Duration, seed int64) {
	c.inner.InjectStragglers(frac, delay, seed)
}

// ServeShard serves a store as a leaf server on the listener; it blocks.
// Pair with ConnectCluster. The store's own engine answers the RPCs, so
// local queries, remote partials, and the /statz counters all share one
// result cache and one set of statistics.
func ServeShard(l net.Listener, s *Store) error {
	return cluster.Serve(l, s.engine)
}

// RebalanceOptions tunes one Rebalance pass.
type RebalanceOptions = cluster.RebalanceOptions

// RebalanceMove records one replica relocation performed by Rebalance.
type RebalanceMove = cluster.Move

// PlacementEntry is one row of the shard→server placement table.
type PlacementEntry = cluster.PlacementEntry

// Placement returns the current shard→server placement table, including
// each replica's latency estimate and breaker state.
func (c *Cluster) Placement() []PlacementEntry { return c.inner.Placement() }

// Rebalance runs one placement pass: replicas whose latency EWMA towers
// over the cluster median (or whose breaker is open) are rebuilt on the
// least-loaded registered server not already hosting their shard.
// In-process clusters (NewCluster, OpenCluster) register their simulated
// servers automatically; RPC clusters add spare servers with
// AddRemoteServer. Superseded leaves are left to drain.
func (c *Cluster) Rebalance(opts RebalanceOptions) ([]RebalanceMove, error) {
	return c.inner.Rebalance(opts)
}

// AddRemoteServer registers a remote placement server as a Rebalance move
// target: addrForShard maps a shard index to the address where that
// server would serve it (one pdserver -store process per shard, or one
// multiplexed listener).
func (c *Cluster) AddRemoteServer(name string, addrForShard func(shard int) string) {
	c.inner.AddServer(name, func(si int) (cluster.Leaf, error) {
		return cluster.NewRemoteLeaf(addrForShard(si)), nil
	})
}

// Mixer is an inner node of the serving tree: it answers partial queries
// like a leaf but computes them by fanning out to child nodes (leaf or
// mixer processes) and merging their partials. Serve it with ServeMixer
// and point a parent — ConnectCluster or a higher ConnectMixer — at its
// address; trees stack to any depth.
type Mixer struct {
	inner *cluster.Mixer
}

// ConnectMixer assembles a mixer over remote children;
// childAddrSets[i] lists the addresses of child subtree i's replicas
// (each a leaf server or another mixer). Children down at assembly join
// automatically once reachable, exactly like ConnectCluster's leaves.
func ConnectMixer(name string, childAddrSets [][]string, opts ClusterOptions) *Mixer {
	var childSets [][]cluster.Leaf
	for _, addrs := range childAddrSets {
		var replicas []cluster.Leaf
		for _, a := range addrs {
			replicas = append(replicas, cluster.NewRemoteLeaf(a))
		}
		childSets = append(childSets, replicas)
	}
	return &Mixer{inner: cluster.NewMixer(name, childSets, opts.clusterOptions())}
}

// ServeMixer serves the mixer's RPC service on l; it blocks.
func ServeMixer(l net.Listener, m *Mixer) error {
	return cluster.ServeNode(l, m.inner)
}

// Stats returns the mixer's own dispatch counters (its fan-out to its
// children; the coordinator's counters are separate).
func (m *Mixer) Stats() ClusterStats { return m.inner.Stats() }

// Health reports the mixer's view of its children's health.
func (m *Mixer) Health() []LeafHealth { return m.inner.Health() }
