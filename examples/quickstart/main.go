// Quickstart: import a table into the PowerDrill column store and run the
// paper's example query shapes against it.
package main

import (
	"fmt"
	"log"

	"powerdrill"
)

func main() {
	// Synthesize the paper's evaluation dataset: PowerDrill query logs
	// with timestamp, table_name, latency, country and user columns.
	tbl := powerdrill.GenerateQueryLogs(200_000, 2012)

	// Import with the paper's production settings: composite range
	// partitioning over a natural key, minimal-width elements, trie
	// dictionaries, and a result cache.
	store, err := powerdrill.Build(tbl, powerdrill.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     5_000,
		OptimizeElements: true,
		StringDict:       powerdrill.StringDictTrie,
		ResultCacheBytes: 32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d rows into %d chunks\n\n", store.NumRows(), store.NumChunks())

	queries := []string{
		// Query 1 of the paper: top countries.
		`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 5;`,
		// Query 2: per-day counts and total latency, via a materialized
		// virtual field date(timestamp).
		`SELECT date(timestamp) AS d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 5;`,
		// A drill-down: restrict to two countries, group by user.
		`SELECT user, COUNT(*) AS c FROM data WHERE country IN ("de", "fr") GROUP BY user ORDER BY c DESC LIMIT 5;`,
	}
	for _, q := range queries {
		fmt.Println(q)
		res, err := store.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range res.Rows {
			for i, v := range row {
				if i > 0 {
					fmt.Print("\t")
				}
				fmt.Print(v)
			}
			fmt.Println()
		}
		fmt.Printf("-- chunks: %d skipped, %d cached, %d scanned\n\n",
			res.Stats.ChunksSkipped, res.Stats.ChunksCached, res.Stats.ChunksScanned)
	}

	// The memory accounting behind the paper's tables.
	m, err := store.Memory("table_name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table_name column footprint: elements %.2f MB, chunk-dicts %.2f MB, dict %.2f MB\n",
		float64(m.Elements)/1e6, float64(m.ChunkDicts)/1e6, float64(m.GlobalDict)/1e6)
}
