// Distributed runs the paper's Section 4 setup in one process: the data is
// sharded quasi-randomly over leaf servers, each shard partitioned into
// chunks, every sub-query raced between a primary and a replica, and the
// group-by re-aggregated through a computation tree. The example then
// injects stragglers and shows the replica scheme hiding them.
package main

import (
	"fmt"
	"log"
	"time"

	"powerdrill"
)

func main() {
	tbl := powerdrill.GenerateQueryLogs(400_000, 99)
	cluster, err := powerdrill.NewCluster(tbl, powerdrill.ClusterOptions{
		Shards:   8,
		Fanout:   4,
		Replicas: 2,
		Store: powerdrill.Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     5_000,
			OptimizeElements: true,
			ResultCacheBytes: 32 << 20,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	q := `SELECT country, COUNT(*) AS c, SUM(latency), AVG(latency)
	      FROM data GROUP BY country ORDER BY c DESC LIMIT 8;`

	run := func(label string) {
		start := time.Now()
		res, err := cluster.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%s: %d result rows in %v\n", label, len(res.Rows), elapsed.Round(time.Millisecond))
		for _, row := range res.Rows[:3] {
			fmt.Printf("  %-4s count=%-8s sum=%-10s avg=%.1f\n",
				row[0], row[1], row[2], row[3].Float())
		}
	}

	run("healthy fleet    ")

	// 40% of the leaves become slow — evicted, overloaded, whatever
	// happens on a shared fleet. The replicas answer first.
	cluster.InjectStragglers(0.4, 250*time.Millisecond, 1)
	run("40% stragglers   ")

	st := cluster.Stats()
	fmt.Printf("\ncluster stats: %d queries, %d sub-queries, %d replica races, %d saved by replicas\n",
		st.Queries, st.SubQueries, st.ReplicaRaces, st.PrimaryFailures)
	fmt.Println("\n(the paper sends every sub-query to a primary and a replica and uses")
	fmt.Println(" whichever answers first; both always compute, keeping caches in sync)")
}
