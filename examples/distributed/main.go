// Distributed runs the paper's Section 4 setup in one process: the data is
// sharded quasi-randomly over leaf servers, each shard partitioned into
// chunks, every sub-query dispatched to a primary and — after a straggler
// threshold, or immediately on error — its replica, and the group-by
// re-aggregated through a computation tree. The example injects
// stragglers and shows hedged dispatch hiding them, then runs under a
// deadline to show the partial-answer coverage accounting
// (see docs/cluster.md).
package main

import (
	"fmt"
	"log"
	"time"

	"powerdrill"
)

func main() {
	tbl := powerdrill.GenerateQueryLogs(400_000, 99)
	cluster, err := powerdrill.NewCluster(tbl, powerdrill.ClusterOptions{
		Shards:   8,
		Fanout:   4,
		Replicas: 2,
		Deadline: 5 * time.Second,
		Store: powerdrill.Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     5_000,
			OptimizeElements: true,
			ResultCacheBytes: 32 << 20,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	q := `SELECT country, COUNT(*) AS c, SUM(latency), AVG(latency)
	      FROM data GROUP BY country ORDER BY c DESC LIMIT 8;`

	run := func(label string) {
		start := time.Now()
		res, err := cluster.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		coverage := ""
		if res.Coverage < 1 {
			coverage = fmt.Sprintf(" (PARTIAL: %.1f%% of rows, %d shards missing)",
				100*res.Coverage, res.Stats.ShardsMissing)
		}
		fmt.Printf("%s: %d result rows in %v%s\n", label, len(res.Rows), elapsed.Round(time.Millisecond), coverage)
		for _, row := range res.Rows[:3] {
			fmt.Printf("  %-4s count=%-8s sum=%-10s avg=%.1f\n",
				row[0], row[1], row[2], row[3].Float())
		}
	}

	run("healthy fleet    ")

	// 40% of the leaves become slow — evicted, overloaded, whatever
	// happens on a shared fleet. The replicas answer first.
	cluster.InjectStragglers(0.4, 250*time.Millisecond, 1)
	run("40% stragglers   ")

	st := cluster.Stats()
	fmt.Printf("\ncluster stats: %d queries, %d sub-queries, %d hedges, %d replica races, %d saved by replicas\n",
		st.Queries, st.SubQueries, st.Hedges, st.ReplicaRaces, st.PrimaryFailures)
	open := 0
	for _, h := range cluster.Health() {
		if h.Breaker != "closed" {
			open++
		}
	}
	fmt.Printf("leaf health: %d leaves, %d with a non-closed breaker\n", len(cluster.Health()), open)

	// Now the degraded case: a tight deadline and leaves so slow that some
	// shards cannot answer in time. Instead of failing the click, the
	// cluster serves whatever arrived and reports the coverage.
	small, err := powerdrill.NewCluster(tbl, powerdrill.ClusterOptions{
		Shards:   8,
		Replicas: 2,
		Deadline: 300 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	small.InjectStragglers(0.5, 10*time.Second, 3)
	fmt.Println()
	start := time.Now()
	res, err := small.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("300ms deadline, half the fleet hung: answered in %v with %.1f%% coverage (%d shards missing)\n",
		time.Since(start).Round(time.Millisecond), 100*res.Coverage, res.Stats.ShardsMissing)
	fmt.Println("\n(the paper sends every sub-query to a primary and a replica; here the")
	fmt.Println(" replica is asked only once the primary looks slow, the first answer wins,")
	fmt.Println(" and a shard with no healthy replica degrades the answer's coverage")
	fmt.Println(" instead of failing the click)")
}
