// Drilldown simulates the PowerDrill Web UI interaction the paper's
// skipping machinery is built for: a user keeps narrowing the view by
// adding IN restrictions, and each "mouse click" refreshes 20 charts —
// 20 group-by queries sharing the same WHERE clause. The example prints,
// per click, how much of the data the engine never had to touch.
package main

import (
	"fmt"
	"log"
	"time"

	"powerdrill"
)

// click is one UI state: a restriction plus the charts to refresh.
type click struct {
	label string
	where string
}

func main() {
	tbl := powerdrill.GenerateQueryLogs(300_000, 7)
	store, err := powerdrill.Build(tbl, powerdrill.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     5_000,
		OptimizeElements: true,
		StringDict:       powerdrill.StringDictTrie,
		ResultCacheBytes: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The charts a click refreshes: different group-bys, same restriction.
	charts := []string{
		`SELECT country, COUNT(*) AS v FROM data %s GROUP BY country ORDER BY v DESC LIMIT 10;`,
		`SELECT date(timestamp) AS d, COUNT(*) AS v FROM data %s GROUP BY d ORDER BY d ASC LIMIT 10;`,
		`SELECT user, COUNT(*) AS v FROM data %s GROUP BY user ORDER BY v DESC LIMIT 10;`,
		`SELECT table_name, SUM(latency) AS v FROM data %s GROUP BY table_name ORDER BY v DESC LIMIT 10;`,
		`SELECT country, AVG(latency) AS v FROM data %s GROUP BY country ORDER BY v DESC LIMIT 10;`,
	}

	// The user drills down: each click adds one conjunct.
	session := []click{
		{"initial view (unrestricted)", ``},
		{"restrict to two countries", `WHERE country IN ("de", "ch")`},
		{"... and one user", `WHERE country IN ("de", "ch") AND user IN ("user0003")`},
		{"... and slow queries only", `WHERE country IN ("de", "ch") AND user IN ("user0003") AND latency > 1000`},
	}

	for i, c := range session {
		var skipped, cached, scanned, total int
		start := time.Now()
		for _, chart := range charts {
			q := fmt.Sprintf(chart, c.where)
			res, err := store.Query(q)
			if err != nil {
				log.Fatalf("%s: %v", q, err)
			}
			skipped += res.Stats.ChunksSkipped
			cached += res.Stats.ChunksCached
			scanned += res.Stats.ChunksScanned
			total += res.Stats.ChunksTotal
		}
		elapsed := time.Since(start)
		fmt.Printf("click %d: %s\n", i+1, c.label)
		fmt.Printf("  %d chart queries in %v\n", len(charts), elapsed.Round(time.Microsecond))
		fmt.Printf("  chunks: %5.1f%% skipped, %5.1f%% cached, %5.1f%% scanned\n\n",
			100*float64(skipped)/float64(total),
			100*float64(cached)/float64(total),
			100*float64(scanned)/float64(total))
	}
	fmt.Println("(the paper's production fleet skips 92.41% of records and caches 5.02%)")
}
