// Countdistinct demonstrates the paper's Section 5 approximate distinct
// counting: the m smallest hash values of a field estimate its number of
// distinct values as m/v, where v is the largest retained (normalized)
// hash. The sketches merge, so COUNT(DISTINCT x) survives the distributed
// execution tree — which exact counting cannot.
package main

import (
	"fmt"
	"log"

	"powerdrill"
)

func main() {
	tbl := powerdrill.GenerateQueryLogs(500_000, 5)

	// Exact reference on a single node.
	exactStore, err := powerdrill.Build(tbl, powerdrill.Options{
		OptimizeElements: true,
		ExactDistinct:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exactStore.Query(`SELECT COUNT(DISTINCT table_name) FROM data;`)
	if err != nil {
		log.Fatal(err)
	}
	exactN := exact.Rows[0][0].Int()
	fmt.Printf("exact distinct table names: %d\n\n", exactN)

	// Approximate, at different sketch sizes.
	fmt.Println("   m     estimate     error")
	for _, m := range []int{256, 1024, 4096} {
		store, err := powerdrill.Build(tbl, powerdrill.Options{
			OptimizeElements: true,
			SketchM:          m,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := store.Query(`SELECT COUNT(DISTINCT table_name) FROM data;`)
		if err != nil {
			log.Fatal(err)
		}
		got := res.Rows[0][0].Int()
		errPct := 100 * float64(got-exactN) / float64(exactN)
		fmt.Printf("%5d   %9d   %+.2f%%\n", m, got, errPct)
	}

	// Grouped count distinct: distinct table names per country — the
	// paper's own example. Counts far below m are exact.
	store, err := powerdrill.Build(tbl, powerdrill.Options{OptimizeElements: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := store.Query(`SELECT country, COUNT(DISTINCT table_name) AS d
	                         FROM data GROUP BY country ORDER BY d DESC LIMIT 5;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndistinct table names per country (top 5):")
	for _, row := range res.Rows {
		fmt.Printf("  %-4s %d\n", row[0], row[1].Int())
	}

	// And distributed: sketches merge across shards.
	cluster, err := powerdrill.NewCluster(tbl, powerdrill.ClusterOptions{
		Shards: 4,
		Store:  powerdrill.Options{OptimizeElements: true, SketchM: 4096},
	})
	if err != nil {
		log.Fatal(err)
	}
	dres, err := cluster.Query(`SELECT COUNT(DISTINCT table_name) FROM data;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed estimate over 4 shards: %d (exact %d)\n", dres.Rows[0][0].Int(), exactN)
}
