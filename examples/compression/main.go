// Compression walks through the paper's Section 3 footprint optimizations
// layer by layer on the same dataset, printing where each megabyte goes:
// the per-query memory story behind Tables 2-4.
package main

import (
	"fmt"
	"log"

	"powerdrill"
)

// layout is one step of the paper's optimization sequence.
type layout struct {
	name string
	opts powerdrill.Options
}

func main() {
	tbl := powerdrill.GenerateQueryLogs(300_000, 3)
	part := []string{"country", "table_name"}

	layouts := []layout{
		{"Basic     (one chunk, 4-byte elements)", powerdrill.Options{}},
		{"Chunks    (composite range partitioning)", powerdrill.Options{
			PartitionFields: part, MaxChunkRows: 5000}},
		{"OptCols   (0/1/8/16/32-bit elements)", powerdrill.Options{
			PartitionFields: part, MaxChunkRows: 5000, OptimizeElements: true}},
		{"OptDicts  (4-bit trie dictionaries)", powerdrill.Options{
			PartitionFields: part, MaxChunkRows: 5000, OptimizeElements: true,
			StringDict: powerdrill.StringDictTrie}},
		{"Reorder   (rows sorted by the partition key)", powerdrill.Options{
			PartitionFields: part, MaxChunkRows: 5000, OptimizeElements: true,
			StringDict: powerdrill.StringDictTrie, Reorder: true}},
	}

	// The paper's hard case: the high-cardinality table_name column.
	fmt.Println("table_name column footprint by layout (MB):")
	fmt.Printf("%-48s %10s %12s %10s %10s\n", "", "elements", "chunk-dicts", "dict", "total")
	for _, l := range layouts {
		store, err := powerdrill.Build(tbl, l.opts)
		if err != nil {
			log.Fatal(err)
		}
		m, err := store.Memory("table_name")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s %10.2f %12.2f %10.2f %10.2f\n", l.name,
			float64(m.Elements)/1e6, float64(m.ChunkDicts)/1e6,
			float64(m.GlobalDict)/1e6, float64(m.Total())/1e6)
	}

	// The easy case: country, first in the partition order — most chunks
	// hold a single country, so elements all but vanish (Table 2's
	// "80 KB suffice to encode the entire column with 5 million values").
	fmt.Println("\ncountry column footprint by layout (MB):")
	for _, l := range layouts {
		store, err := powerdrill.Build(tbl, l.opts)
		if err != nil {
			log.Fatal(err)
		}
		m, err := store.Memory("country")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s %10.3f\n", l.name, float64(m.Total())/1e6)
	}

	fmt.Println("\n(the paper reduces Query 3's footprint 91.23 MB -> 5.63 MB across")
	fmt.Println(" these steps, and Query 1's elements to 80 KB; see EXPERIMENTS.md)")
}
