package powerdrill

import (
	"errors"

	"powerdrill/internal/ingest"
	"powerdrill/internal/sql"
)

// IngestStats is a point-in-time snapshot of a store's append path:
// committed generation, live segments, buffered rows and cumulative
// seal/compaction counters.
type IngestStats = ingest.Stats

// CompactStats reports what one compaction did.
type CompactStats = ingest.CompactStats

// Append buffers a batch of rows into the store's streaming ingestion
// path. The batch must carry exactly the store's physical columns (same
// names and kinds). Rows become visible to queries immediately —
// snapshot-isolated, see Query — and durable when the write buffer seals
// into an on-disk segment: automatically every Options.IngestSealRows
// rows, or on Flush and Close.
//
// Appending requires a store opened from disk (Open); one process at a
// time may append to a directory. Concurrent Appends, Queries and
// background compactions are safe.
func (s *Store) Append(tbl *Table) error {
	w, err := s.ensureWriter()
	if err != nil {
		return err
	}
	return w.Append(tbl)
}

// Flush seals any buffered rows into a committed on-disk segment, making
// every previously appended row durable. A no-op when nothing is
// buffered or nothing was ever appended.
func (s *Store) Flush() error {
	if w := s.writer(); w != nil {
		return w.Flush()
	}
	return nil
}

// CompactNow synchronously merges all live ingest segments into one,
// re-sorting and re-partitioning the union through the import pipeline
// and garbage-collecting dead virtual-column sidecar files. Queries in
// flight keep their pinned generation; superseded segments are destroyed
// when the last such query finishes. The background compactor does the
// same automatically past Options.IngestCompactMinSegments.
func (s *Store) CompactNow() (CompactStats, error) {
	w, err := s.ensureWriter()
	if err != nil {
		return CompactStats{}, err
	}
	return w.CompactNow()
}

// IngestStats reports the append path's state; ok is false when the
// store has no append path (never appended to and nothing attached).
func (s *Store) IngestStats() (IngestStats, bool) {
	if w := s.writer(); w != nil {
		return w.Stats(), true
	}
	return IngestStats{}, false
}

// writer returns the attached ingest writer, or nil.
func (s *Store) writer() *ingest.Writer {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	return s.ing
}

// ensureWriter attaches the ingest writer on first use. Open already
// attaches when the directory carries generations; this covers the first
// Append to a store that never had any.
func (s *Store) ensureWriter() (*ingest.Writer, error) {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	if s.closed {
		return nil, errors.New("powerdrill: store is closed")
	}
	if s.ing != nil {
		return s.ing, nil
	}
	if s.dir == "" {
		return nil, errors.New("powerdrill: appending requires a store opened from disk (use Open)")
	}
	w, err := ingest.Attach(s.dir, s.store, s.engine, ingest.Opts{
		SealRows:              s.opts.IngestSealRows,
		CompactMinSegments:    s.opts.IngestCompactMinSegments,
		FsyncPolicy:           s.opts.IngestFsyncPolicy,
		DisableChecksumVerify: s.opts.DisableChecksumVerify,
		EngineOpts:            s.opts.engineOptions(),
	})
	if err != nil {
		return nil, err
	}
	s.ing = w
	return w, nil
}

// queryIngest runs a query through a snapshot of the append stream.
func queryIngest(w *ingest.Writer, sqlText string) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	snap, err := w.Snapshot()
	if err != nil {
		return nil, err
	}
	defer snap.Release()
	res, err := snap.Run(stmt)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: res.Columns, Rows: res.Rows, Stats: res.Stats, Coverage: res.Coverage}, nil
}
